// Tests for the unified service API: lossless JSON wire round-trips of
// every request/response kind (including error envelopes, NaN/inf
// rejection and unknown-field tolerance), the service facade's result
// cache (hits asserted via the stats request, bit-identity against
// direct batch_session calls), and the evict request.

#include "svc/service.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "exec/batch_session.h"
#include "exec/engine_pool.h"
#include "gen/comparator.h"
#include "io/bench_io.h"
#include "svc/wire.h"
#include "util/rng.h"

namespace wrpt {
namespace {

using namespace wrpt::svc;

// encode -> decode -> encode must reproduce the first encoding byte for
// byte: the encoder is canonical and the decoder lossless.
void expect_request_roundtrip(const request& q) {
    const std::string wire1 = encode(q);
    const request back = decode_request(wire1);
    EXPECT_EQ(back.id, q.id);
    EXPECT_EQ(back.kind(), q.kind());
    EXPECT_EQ(encode(back), wire1);
}

void expect_response_roundtrip(const response& r) {
    const std::string wire1 = encode(r);
    const response back = decode_response(wire1);
    EXPECT_EQ(back.id, r.id);
    EXPECT_EQ(back.ok, r.ok);
    EXPECT_EQ(back.kind(), r.kind());
    EXPECT_EQ(encode(back), wire1);
}

TEST(wire, every_request_kind_round_trips_byte_for_byte) {
    request load;
    load.id = 1;
    load_circuit_request lp;
    lp.name = "cmp";
    lp.bench = "INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n";
    lp.path = "";
    lp.suite = "";
    load.payload = lp;
    expect_request_roundtrip(load);

    request length;
    length.id = 2;
    test_length_request tp;
    tp.circuit = 3;
    tp.weights = {0.1, 0.25, 1.0 / 3.0, 0.95};
    tp.confidence = 0.9995;
    tp.threads = 8;
    length.payload = tp;
    expect_request_roundtrip(length);

    request optimize;
    optimize.id = 3;
    optimize_request op;
    op.circuit = 1;
    op.weights = {0.5, 0.5};
    op.options.confidence = 0.99;
    op.options.alpha = 0.125;
    op.options.max_sweeps = 7;
    op.options.grid = 0.0;
    op.options.saddle_escape = false;
    op.options.prepare_block = SIZE_MAX;  // the sentinel must survive
    op.options.threads = 4;
    optimize.payload = op;
    expect_request_roundtrip(optimize);
    const auto decoded =
        std::get<optimize_request>(decode_request(encode(optimize)).payload);
    EXPECT_EQ(decoded.options.prepare_block, SIZE_MAX);
    EXPECT_EQ(decoded.options.max_sweeps, 7u);
    EXPECT_FALSE(decoded.options.saddle_escape);

    request sim;
    sim.id = 4;
    fault_sim_request sp;
    sp.circuit = 2;
    sp.weights = {0.05, 0.95};
    sp.patterns = 1u << 20;
    sp.seed = 0xdeadbeefcafeULL;
    sim.payload = sp;
    expect_request_roundtrip(sim);

    request matrix;
    matrix.id = 5;
    matrix_request mp;
    mp.kind = job_kind::optimize;
    mp.circuits = {0, 2, 5};
    mp.weight_sets = {{0.5, 0.5}, {}, {0.1, 0.9}};
    mp.options.max_sweeps = 3;
    mp.patterns = 128;
    mp.seed = 7;
    mp.confidence = 0.999;
    matrix.payload = mp;
    expect_request_roundtrip(matrix);

    request stats;
    stats.id = 6;
    stats.payload = stats_request{};
    expect_request_roundtrip(stats);

    request evict;
    evict.id = 7;
    evict_request ep;
    ep.all = false;
    ep.circuit = 4;
    ep.keep_engines = 2;
    evict.payload = ep;
    expect_request_roundtrip(evict);

    request shutdown;
    shutdown.id = 8;
    shutdown.payload = shutdown_request{};
    expect_request_roundtrip(shutdown);
}

TEST(wire, every_response_kind_round_trips_byte_for_byte) {
    expect_response_roundtrip(make_error(9, "bad circuit handle 7"));

    response load;
    load.id = 1;
    load_circuit_response lr;
    lr.circuit = 0;
    lr.name = "cmp\"quoted\"\nline";  // escaping must survive
    lr.inputs = 8;
    lr.outputs = 3;
    lr.gates = 54;
    lr.faults = 130;
    lr.revision = 0xffffffffffffffffULL;  // u64 precision must survive
    load.payload = lr;
    expect_response_roundtrip(load);
    const auto lback =
        std::get<load_circuit_response>(decode_response(encode(load)).payload);
    EXPECT_EQ(lback.revision, 0xffffffffffffffffULL);
    EXPECT_EQ(lback.name, lr.name);

    response length;
    length.id = 2;
    test_length_response tr;
    tr.circuit = 1;
    tr.revision = 42;
    tr.cached = true;
    tr.elapsed_ms = 0.0;
    tr.length = {true, 1234.5678, 96, 2, 0.00123456789012345};
    length.payload = tr;
    expect_response_roundtrip(length);

    response optimize;
    optimize.id = 3;
    optimize_response orr;
    orr.circuit = 0;
    orr.revision = 7;
    orr.cached = false;
    orr.elapsed_ms = 12.5;
    orr.feasible = true;
    orr.initial_length = 5000.25;
    orr.final_length = 1000.125;
    orr.sweeps = 6;
    orr.analysis_calls = 19;
    orr.zero_prob_faults = 0;
    orr.weights = {0.05, 0.5, 0.95, 0.3000000000000001};
    orr.length = {true, 1000.125, 88, 0, 0.004};
    optimize.payload = orr;
    expect_response_roundtrip(optimize);
    const auto oback =
        std::get<optimize_response>(decode_response(encode(optimize)).payload);
    EXPECT_EQ(oback.weights, orr.weights);  // exact doubles, not approximate

    response sim;
    sim.id = 4;
    fault_sim_response sr;
    sr.circuit = 2;
    sr.revision = 40;
    sr.cached = false;
    sr.elapsed_ms = 3.25;
    sr.patterns = 4096;
    sr.faults = 130;
    sr.detected = 127;
    sr.coverage = 97.69230769230769;
    sim.payload = sr;
    expect_response_roundtrip(sim);

    response matrix;
    matrix.id = 5;
    matrix_response mr;
    mr.results.push_back(length);
    mr.results.push_back(make_error(5, "weight count mismatch"));
    matrix.payload = mr;
    expect_response_roundtrip(matrix);
    const auto mback =
        std::get<matrix_response>(decode_response(encode(matrix)).payload);
    ASSERT_EQ(mback.results.size(), 2u);
    EXPECT_FALSE(mback.results[1].ok);

    response stats;
    stats.id = 6;
    stats_response str;
    str.requests = 12;
    str.cache_hits = 3;
    str.cache_misses = 5;
    str.cache_entries = 4;
    str.cache_evictions = 1;
    str.circuits = 2;
    str.pools.push_back({0, 41, 3, 2, 4, 10, 3, 5, 1});
    str.pools.push_back({1, 42, 1, 1, 0, 2, 1, 0, 0});
    stats.payload = str;
    expect_response_roundtrip(stats);

    response evict;
    evict.id = 7;
    evict.payload = evict_response{3, 2};
    expect_response_roundtrip(evict);

    response shutdown;
    shutdown.id = 8;
    shutdown.payload = shutdown_response{};
    expect_response_roundtrip(shutdown);
}

TEST(wire, registry_request_kinds_round_trip_byte_for_byte) {
    request reg;
    reg.id = 20;
    register_circuit_request rp;
    rp.tenant = "acme";
    rp.name = "alu/v2";  // names may contain '/', tenants may not
    rp.bench = "INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n";
    reg.payload = rp;
    expect_request_roundtrip(reg);

    request rel;
    rel.id = 21;
    reload_circuit_request lp;
    lp.tenant = "acme";
    lp.name = "alu/v2";
    lp.suite = "S1";
    rel.payload = lp;
    expect_request_roundtrip(rel);

    request list;
    list.id = 22;
    list.payload = list_circuits_request{"acme"};
    expect_request_roundtrip(list);
    request list_all;
    list_all.payload = list_circuits_request{};
    expect_request_roundtrip(list_all);

    // Named jobs: the "name" field rides every job kind and survives.
    request named;
    named.id = 23;
    test_length_request tp;
    tp.name = "acme/alu/v2";
    tp.confidence = 0.99;
    named.payload = tp;
    expect_request_roundtrip(named);
    EXPECT_EQ(std::get<test_length_request>(
                  decode_request(encode(named)).payload)
                  .name,
              "acme/alu/v2");
}

TEST(wire, registry_response_kinds_round_trip_byte_for_byte) {
    response reg;
    reg.id = 20;
    register_circuit_response rr;
    rr.tenant = "acme";
    rr.name = "alu/v2";
    rr.circuit = 3;
    rr.revision = 99;
    rr.inputs = 8;
    rr.outputs = 2;
    rr.gates = 40;
    reg.payload = rr;
    expect_response_roundtrip(reg);

    response rel;
    rel.id = 21;
    reload_circuit_response lr;
    lr.tenant = "acme";
    lr.name = "alu/v2";
    lr.circuit = 3;
    lr.revision = 100;
    lr.old_revision = 99;
    lr.reloads = 7;
    rel.payload = lr;
    expect_response_roundtrip(rel);
    const auto lback = std::get<reload_circuit_response>(
        decode_response(encode(rel)).payload);
    EXPECT_EQ(lback.old_revision, 99u);
    EXPECT_EQ(lback.reloads, 7u);

    response list;
    list.id = 22;
    list_circuits_response cr;
    cr.entries.push_back({"acme", "alu/v2", 3, 100, true, 7});
    cr.entries.push_back({"zeta", "mul", 4, 5, false, 0});
    list.payload = cr;
    expect_response_roundtrip(list);

    // Typed error envelopes keep their code; untyped ones encode exactly
    // as before the code field existed.
    expect_response_roundtrip(
        make_error(23, "tenant 'acme' is at its circuit quota (2)", "quota"));
    const std::string untyped = encode(make_error(24, "boom"));
    EXPECT_EQ(untyped.find("\"code\""), std::string::npos);
    expect_response_roundtrip(make_error(24, "boom"));

    // A stats response with the registry section present.
    response stats;
    stats_response sr;
    sr.requests = 3;
    sr.circuits = 1;
    sr.registry.present = true;
    sr.registry.circuits = 1000;
    sr.registry.resident = 32;
    sr.registry.max_views = 32;
    sr.registry.view_evictions = 68;
    sr.registry.view_rebuilds = 100;
    sr.registry.tenants.push_back({"acme", 2, 4096, 2, 1, 65536, 5});
    stats.payload = sr;
    expect_response_roundtrip(stats);
    // ...and absent from the wire when no circuit was ever registered, so
    // pre-registry transcripts stay byte-identical.
    response bare;
    bare.payload = stats_response{};
    EXPECT_EQ(encode(bare).find("\"registry\""), std::string::npos);
    expect_response_roundtrip(bare);
}

TEST(wire, fuzzed_weight_vectors_survive_the_trip_losslessly) {
    rng r(0x5eed);
    for (int trial = 0; trial < 50; ++trial) {
        request q;
        q.id = static_cast<std::uint64_t>(trial);
        test_length_request p;
        p.circuit = trial;
        const std::size_t n = 1 + (r.next_word() % 40);
        for (std::size_t i = 0; i < n; ++i)
            p.weights.push_back(
                static_cast<double>(r.next_word()) * 0x1p-64);
        q.payload = p;
        const request back = decode_request(encode(q));
        EXPECT_EQ(std::get<test_length_request>(back.payload).weights,
                  p.weights);
        EXPECT_EQ(encode(back), encode(q));
    }
}

TEST(wire, decoder_tolerates_unknown_fields) {
    const request q = decode_request(
        R"({"req":"test_length","id":9,"circuit":1,"weights":[0.5],)"
        R"("confidence":0.99,"threads":2,)"
        R"("future_knob":{"nested":[1,2,{"deep":true}]},"comment":"hi"})");
    EXPECT_EQ(q.id, 9u);
    const auto& p = std::get<test_length_request>(q.payload);
    EXPECT_EQ(p.circuit, 1u);
    EXPECT_EQ(p.weights, (weight_vector{0.5}));
    EXPECT_EQ(p.confidence, 0.99);
    EXPECT_EQ(p.threads, 2u);
}

TEST(wire, rejects_malformed_and_non_finite_input) {
    EXPECT_THROW(decode_request("not json"), wire_error);
    EXPECT_THROW(decode_request("{\"req\":\"optimize\",..."), wire_error);
    EXPECT_THROW(decode_request(R"({"id":1})"), wire_error);  // no kind
    EXPECT_THROW(decode_request(R"({"req":"warp_core","id":1})"), wire_error);
    // JSON has no NaN/Infinity tokens, and overflowing literals must not
    // sneak a non-finite weight through.
    EXPECT_THROW(
        decode_request(R"({"req":"test_length","id":1,"weights":[NaN]})"),
        wire_error);
    EXPECT_THROW(
        decode_request(
            R"({"req":"test_length","id":1,"weights":[Infinity]})"),
        wire_error);
    EXPECT_THROW(
        decode_request(R"({"req":"test_length","id":1,"weights":[1e999]})"),
        wire_error);
    // Encoding a non-finite value is refused too.
    request q;
    test_length_request p;
    p.weights = {std::numeric_limits<double>::quiet_NaN()};
    q.payload = p;
    EXPECT_THROW(encode(q), wire_error);
}

TEST(wire, surrogate_pairs_combine_into_utf8_and_unpaired_ones_fail) {
    const request q = decode_request(
        R"({"req":"load_circuit","id":1,"name":"😀","suite":"S1"})");
    // U+1F600 as proper 4-byte UTF-8, not a CESU-8 surrogate pair.
    EXPECT_EQ(std::get<load_circuit_request>(q.payload).name,
              "\xF0\x9F\x98\x80");
    // The raw UTF-8 re-encoding still round-trips.
    EXPECT_EQ(encode(decode_request(encode(q))), encode(q));

    EXPECT_THROW(
        decode_request(R"({"req":"stats","id":1,"x":"\ud83d"})"), wire_error);
    EXPECT_THROW(
        decode_request(R"({"req":"stats","id":1,"x":"\ude00"})"), wire_error);
    EXPECT_THROW(
        decode_request(R"({"req":"stats","id":1,"x":"\ud83dA"})"),
        wire_error);
}

TEST(wire, deeply_nested_input_fails_cleanly_instead_of_crashing) {
    // A hostile line must produce a wire_error envelope, not a blown
    // stack in the long-lived daemon.
    const std::string bomb(300000, '[');
    EXPECT_THROW(decode_request(bomb), wire_error);
    EXPECT_EQ(extract_id(bomb), 0u);  // best-effort path survives too
    // Legitimate nesting (a matrix response nests three object levels)
    // stays well under the cap.
    std::string deep = R"({"req":"stats","id":1,"x":)";
    for (int i = 0; i < 40; ++i) deep += "[";
    for (int i = 0; i < 40; ++i) deep += "]";
    deep += "}";
    EXPECT_EQ(decode_request(deep).id, 1u);
}

TEST(wire, extract_id_recovers_ids_from_broken_lines) {
    EXPECT_EQ(extract_id(R"({"req":"stats","id":41})"), 41u);
    EXPECT_EQ(extract_id(R"({"req":"optimize","id":7,"truncated)"), 7u);
    EXPECT_EQ(extract_id("garbage"), 0u);
}

// --- service facade ---------------------------------------------------------

std::size_t load_comparator(service& s, const std::string& name) {
    request q;
    load_circuit_request p;
    p.name = name;
    p.bench = write_bench_string(make_cascaded_comparator(2, name));
    q.payload = std::move(p);
    const response r = s.handle(q);
    EXPECT_TRUE(r.ok);
    const auto& out = std::get<load_circuit_response>(r.payload);
    EXPECT_EQ(out.name, name);
    EXPECT_GT(out.inputs, 0u);
    EXPECT_GT(out.faults, 0u);
    return out.circuit;
}

optimize_options fast_options() {
    optimize_options oo;
    oo.max_sweeps = 3;
    return oo;
}

TEST(service, repeated_optimize_is_answered_from_the_result_cache) {
    service s;
    const std::size_t c = load_comparator(s, "svc_cmp");

    request q;
    q.id = 10;
    optimize_request p;
    p.circuit = c;
    p.options = fast_options();
    q.payload = p;

    const response first = s.handle(q);
    ASSERT_TRUE(first.ok);
    const auto& r1 = std::get<optimize_response>(first.payload);
    EXPECT_FALSE(r1.cached);
    EXPECT_TRUE(r1.feasible);
    EXPECT_FALSE(r1.weights.empty());

    q.id = 11;
    const response second = s.handle(q);
    ASSERT_TRUE(second.ok);
    const auto& r2 = std::get<optimize_response>(second.payload);
    EXPECT_TRUE(r2.cached);
    EXPECT_EQ(second.id, 11u);  // the envelope echoes the new request id
    // Bit-identical replay: the full weight vector and both lengths.
    EXPECT_EQ(r2.weights, r1.weights);
    EXPECT_EQ(r2.final_length, r1.final_length);
    EXPECT_EQ(r2.initial_length, r1.initial_length);
    EXPECT_EQ(r2.elapsed_ms, 0.0);  // the hit costs nothing

    // The stats request is the observable contract for the hit.
    request sq;
    sq.id = 12;
    sq.payload = stats_request{};
    const response stats = s.handle(sq);
    ASSERT_TRUE(stats.ok);
    const auto& st = std::get<stats_response>(stats.payload);
    EXPECT_EQ(st.cache_hits, 1u);
    EXPECT_EQ(st.cache_misses, 1u);
    EXPECT_EQ(st.cache_entries, 1u);
    EXPECT_EQ(st.circuits, 1u);
    ASSERT_EQ(st.pools.size(), 1u);
    EXPECT_EQ(st.pools[0].circuit, c);
    EXPECT_EQ(st.pools[0].revision, s.session().circuit(c).revision());
}

TEST(service, cached_weights_are_bit_identical_to_direct_batch_session) {
    const std::string bench =
        write_bench_string(make_cascaded_comparator(2, "svc_direct"));

    // Direct path: the pre-svc engine layer.
    batch_session session;
    const std::size_t direct =
        session.add_circuit(read_bench_string(bench, "svc_direct"));
    svc::optimize_request p;
    p.circuit = direct;
    p.options = fast_options();
    const auto direct_results = session.run({svc::job_request{p}});
    ASSERT_EQ(direct_results.size(), 1u);

    // Served path, twice: the second answer comes from the cache.
    service s;
    request lq;
    load_circuit_request lp;
    lp.bench = bench;
    lq.payload = std::move(lp);
    const response lr = s.handle(lq);
    ASSERT_TRUE(lr.ok);
    request q;
    optimize_request op;
    op.circuit = std::get<load_circuit_response>(lr.payload).circuit;
    op.options = fast_options();
    q.payload = op;
    const response uncached = s.handle(q);
    const response cached = s.handle(q);
    ASSERT_TRUE(uncached.ok);
    ASSERT_TRUE(cached.ok);
    const auto& ru = std::get<optimize_response>(uncached.payload);
    const auto& rc = std::get<optimize_response>(cached.payload);
    EXPECT_FALSE(ru.cached);
    EXPECT_TRUE(rc.cached);

    // Same circuit text, same options: all three answers carry the exact
    // same optimized vector and test lengths.
    EXPECT_EQ(ru.weights, direct_results[0].optimized.weights);
    EXPECT_EQ(rc.weights, direct_results[0].optimized.weights);
    EXPECT_EQ(ru.final_length,
              direct_results[0].optimized.final_test_length);
    EXPECT_EQ(ru.length.test_length, direct_results[0].length.test_length);
}

TEST(service, empty_weights_and_explicit_uniform_share_a_cache_entry) {
    service s;
    const std::size_t c = load_comparator(s, "svc_uniform");

    request q1;
    test_length_request p1;
    p1.circuit = c;  // empty weights = uniform shorthand
    q1.payload = p1;
    const response r1 = s.handle(q1);
    ASSERT_TRUE(r1.ok);
    EXPECT_FALSE(std::get<test_length_response>(r1.payload).cached);

    request q2;
    test_length_request p2;
    p2.circuit = c;
    p2.weights = uniform_weights(s.session().circuit(c));
    q2.payload = p2;
    const response r2 = s.handle(q2);
    ASSERT_TRUE(r2.ok);
    EXPECT_TRUE(std::get<test_length_response>(r2.payload).cached);
    EXPECT_EQ(std::get<test_length_response>(r2.payload).length.test_length,
              std::get<test_length_response>(r1.payload).length.test_length);
}

TEST(service, different_options_or_kinds_do_not_alias_in_the_cache) {
    service s;
    const std::size_t c = load_comparator(s, "svc_alias");

    request q1;
    test_length_request p1;
    p1.circuit = c;
    p1.confidence = 0.999;
    q1.payload = p1;
    ASSERT_TRUE(s.handle(q1).ok);

    // Same kind, different confidence: a miss, and a different answer.
    request q2;
    test_length_request p2;
    p2.circuit = c;
    p2.confidence = 0.9;
    q2.payload = p2;
    const response r2 = s.handle(q2);
    ASSERT_TRUE(r2.ok);
    EXPECT_FALSE(std::get<test_length_response>(r2.payload).cached);

    // Same weights, different kind (fault_sim): also a miss.
    request q3;
    fault_sim_request p3;
    p3.circuit = c;
    p3.patterns = 256;
    q3.payload = p3;
    const response r3 = s.handle(q3);
    ASSERT_TRUE(r3.ok);
    EXPECT_FALSE(std::get<fault_sim_response>(r3.payload).cached);

    request sq;
    sq.payload = stats_request{};
    const auto& st =
        std::get<stats_response>(s.handle(sq).payload);
    EXPECT_EQ(st.cache_hits, 0u);
    EXPECT_EQ(st.cache_misses, 3u);
    EXPECT_EQ(st.cache_entries, 3u);
}

TEST(service, evict_clears_the_cache_and_trims_the_pools) {
    service s;
    const std::size_t c = load_comparator(s, "svc_evict");

    request q;
    test_length_request p;
    p.circuit = c;
    q.payload = p;
    ASSERT_TRUE(s.handle(q).ok);
    EXPECT_TRUE(std::get<test_length_response>(s.handle(q).payload).cached);

    // Park a warm engine in the circuit's pool (the tiny comparator's
    // estimator may legitimately answer without engines, so plant one).
    {
        engine_pool::lease lease = s.session().pool(c).checkout(
            uniform_weights(s.session().circuit(c)));
    }
    ASSERT_GT(s.session().pool(c).warm_count(), 0u);

    request eq;
    evict_request ep;
    ep.all = false;
    ep.circuit = c;
    eq.payload = ep;
    const response er = s.handle(eq);
    ASSERT_TRUE(er.ok);
    const auto& ev = std::get<evict_response>(er.payload);
    EXPECT_EQ(ev.cache_entries, 1u);
    EXPECT_GT(ev.engines, 0u);  // the planted warm engine is dropped
    EXPECT_EQ(s.session().pool(c).warm_count(), 0u);

    // After eviction the same query recomputes...
    const response again = s.handle(q);
    ASSERT_TRUE(again.ok);
    EXPECT_FALSE(std::get<test_length_response>(again.payload).cached);

    // ...and the pool eviction shows up in the stats payload.
    request sq;
    sq.payload = stats_request{};
    const auto st = std::get<stats_response>(s.handle(sq).payload);
    ASSERT_EQ(st.pools.size(), 1u);
    EXPECT_GT(st.pools[0].evictions, 0u);
    EXPECT_GT(st.cache_evictions, 0u);
}

TEST(service, matrix_requests_answer_per_entry_with_error_envelopes) {
    service s;
    const std::size_t a = load_comparator(s, "svc_mat_a");
    const std::size_t b = load_comparator(s, "svc_mat_b");

    request q;
    q.id = 77;
    matrix_request m;
    m.kind = job_kind::test_length;
    m.circuits = {a, b, 99};  // the last handle does not exist
    m.weight_sets = {weight_vector{}};
    q.payload = std::move(m);
    const response r = s.handle(q);
    ASSERT_TRUE(r.ok);
    const auto& mr = std::get<matrix_response>(r.payload);
    ASSERT_EQ(mr.results.size(), 3u);
    EXPECT_TRUE(mr.results[0].ok);
    EXPECT_TRUE(mr.results[1].ok);
    EXPECT_FALSE(mr.results[2].ok);  // per-entry envelope, not a dead batch
    EXPECT_EQ(mr.results[2].id, 77u);

    // The two valid answers match individual requests exactly.
    request single;
    test_length_request p;
    p.circuit = a;
    single.payload = p;
    const auto direct =
        std::get<test_length_response>(s.handle(single).payload);
    EXPECT_TRUE(direct.cached);  // matrix already populated the cache
    EXPECT_EQ(direct.length.test_length,
              std::get<test_length_response>(mr.results[0].payload)
                  .length.test_length);
}

TEST(wire, evict_without_all_field_defaults_to_per_circuit) {
    // Naming a circuit but omitting "all" must NOT wipe the daemon.
    const auto scoped = std::get<evict_request>(
        decode_request(R"({"req":"evict","id":1,"circuit":2})").payload);
    EXPECT_FALSE(scoped.all);
    EXPECT_EQ(scoped.circuit, 2u);
    // No circuit named: a global evict, as before.
    const auto global = std::get<evict_request>(
        decode_request(R"({"req":"evict","id":2})").payload);
    EXPECT_TRUE(global.all);
    // Explicit "all":true with a circuit still wins.
    const auto forced = std::get<evict_request>(
        decode_request(R"({"req":"evict","id":3,"all":true,"circuit":2})")
            .payload);
    EXPECT_TRUE(forced.all);
}

TEST(service, copied_circuits_sharing_a_revision_do_not_alias) {
    service s;
    // netlist copies keep their source's revision stamp; two handles of
    // the same copied circuit must still cache and evict independently.
    const netlist nl = make_cascaded_comparator(2, "svc_twin");
    const std::size_t a = s.session().add_circuit(nl);
    const std::size_t b = s.session().add_circuit(nl);
    ASSERT_EQ(s.session().circuit(a).revision(),
              s.session().circuit(b).revision());

    request qa;
    test_length_request pa;
    pa.circuit = a;
    qa.payload = pa;
    ASSERT_TRUE(s.handle(qa).ok);

    request qb;
    test_length_request pb;
    pb.circuit = b;
    qb.payload = pb;
    const response rb = s.handle(qb);
    ASSERT_TRUE(rb.ok);
    const auto& out = std::get<test_length_response>(rb.payload);
    EXPECT_FALSE(out.cached);      // b's first query is not a's entry
    EXPECT_EQ(out.circuit, b);     // and reports b's identity

    // Per-circuit evict drops only the named handle's entry.
    request eq;
    evict_request ep;
    ep.all = false;
    ep.circuit = a;
    eq.payload = ep;
    EXPECT_EQ(std::get<evict_response>(s.handle(eq).payload).cache_entries,
              1u);
    EXPECT_TRUE(
        std::get<test_length_response>(s.handle(qb).payload).cached);
}

TEST(service, thread_count_knobs_do_not_fragment_the_cache) {
    service s;
    const std::size_t c = load_comparator(s, "svc_threads");

    request q1;
    test_length_request p1;
    p1.circuit = c;
    p1.threads = 1;
    q1.payload = p1;
    ASSERT_TRUE(s.handle(q1).ok);

    // Same query at a different thread count: results are
    // thread-invariant, so this must hit.
    request q2;
    test_length_request p2;
    p2.circuit = c;
    p2.threads = 2;
    q2.payload = p2;
    EXPECT_TRUE(std::get<test_length_response>(s.handle(q2).payload).cached);

    request q3;
    optimize_request p3;
    p3.circuit = c;
    p3.options = fast_options();
    p3.options.threads = 1;
    q3.payload = p3;
    ASSERT_TRUE(s.handle(q3).ok);
    p3.options.threads = 2;
    q3.payload = p3;
    EXPECT_TRUE(std::get<optimize_response>(s.handle(q3).payload).cached);
}

TEST(service, duplicate_jobs_in_one_matrix_compute_once) {
    service s;
    const std::size_t c = load_comparator(s, "svc_dup");

    request q;
    matrix_request m;
    m.kind = job_kind::test_length;
    m.circuits = {c};
    // The empty shorthand and the explicit uniform vector are the same
    // query: one must compute, the other must ride its result.
    m.weight_sets = {weight_vector{},
                     uniform_weights(s.session().circuit(c))};
    q.payload = std::move(m);
    const response r = s.handle(q);
    ASSERT_TRUE(r.ok);
    const auto& mr = std::get<matrix_response>(r.payload);
    ASSERT_EQ(mr.results.size(), 2u);
    const auto& a = std::get<test_length_response>(mr.results[0].payload);
    const auto& b = std::get<test_length_response>(mr.results[1].payload);
    EXPECT_FALSE(a.cached);
    EXPECT_TRUE(b.cached);
    EXPECT_EQ(a.length.test_length, b.length.test_length);

    request sq;
    sq.payload = stats_request{};
    const auto st = std::get<stats_response>(s.handle(sq).payload);
    EXPECT_EQ(st.cache_misses, 1u);  // computed once, not twice
    EXPECT_EQ(st.cache_hits, 1u);
    EXPECT_EQ(st.cache_entries, 1u);
}

TEST(service, bad_options_get_per_entry_envelopes_in_a_matrix) {
    service s;
    const std::size_t c = load_comparator(s, "svc_badopt");

    request q;
    q.id = 88;
    matrix_request m;
    m.kind = job_kind::test_length;
    m.circuits = {c};
    m.weight_sets = {weight_vector{}};
    m.confidence = 1.5;  // would throw deep inside the pipeline
    q.payload = std::move(m);
    const response r = s.handle(q);
    ASSERT_TRUE(r.ok);  // the matrix envelope survives...
    const auto& mr = std::get<matrix_response>(r.payload);
    ASSERT_EQ(mr.results.size(), 1u);
    EXPECT_FALSE(mr.results[0].ok);  // ...with a per-entry error inside
    EXPECT_NE(std::get<error_response>(mr.results[0].payload)
                  .message.find("confidence"),
              std::string::npos);

    // Bad optimize options are envelopes too, and the service survives.
    request oq;
    optimize_request op;
    op.circuit = c;
    op.options.max_sweeps = 0;
    oq.payload = op;
    EXPECT_FALSE(s.handle(oq).ok);
    op.options = fast_options();
    op.options.weight_min = 0.8;
    op.options.weight_max = 0.2;
    oq.payload = op;
    EXPECT_FALSE(s.handle(oq).ok);
}

TEST(service, bad_requests_become_error_envelopes_not_exceptions) {
    service s;

    // Unknown circuit handle.
    request q;
    q.id = 5;
    test_length_request p;
    p.circuit = 123;
    q.payload = p;
    const response r = s.handle(q);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.id, 5u);
    EXPECT_NE(std::get<error_response>(r.payload).message.find("handle"),
              std::string::npos);

    // Non-finite and out-of-range weights.
    const std::size_t c = load_comparator(s, "svc_bad");
    request q2;
    test_length_request p2;
    p2.circuit = c;
    p2.weights = uniform_weights(s.session().circuit(c));
    p2.weights[0] = std::numeric_limits<double>::infinity();
    q2.payload = p2;
    EXPECT_FALSE(s.handle(q2).ok);
    p2.weights[0] = 1.5;
    q2.payload = p2;
    EXPECT_FALSE(s.handle(q2).ok);

    // Malformed load request (two sources).
    request q3;
    load_circuit_request p3;
    p3.bench = "INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n";
    p3.suite = "S1";
    q3.payload = p3;
    EXPECT_FALSE(s.handle(q3).ok);

    // The service is still alive and serving after all of that.
    request sq;
    sq.payload = stats_request{};
    EXPECT_TRUE(s.handle(sq).ok);
}

TEST(service, cache_entry_cap_evicts_oldest_entries_first) {
    service::options so;
    so.max_cache_entries = 2;
    service s(so);
    const std::size_t c = load_comparator(s, "svc_cap");

    auto query = [&](double confidence) {
        request q;
        test_length_request p;
        p.circuit = c;
        p.confidence = confidence;
        q.payload = p;
        return s.handle(q);
    };
    ASSERT_TRUE(query(0.9).ok);
    ASSERT_TRUE(query(0.99).ok);
    ASSERT_TRUE(query(0.999).ok);  // evicts the 0.9 entry

    request sq;
    sq.payload = stats_request{};
    {
        const auto st = std::get<stats_response>(s.handle(sq).payload);
        EXPECT_EQ(st.cache_entries, 2u);
        EXPECT_EQ(st.cache_evictions, 1u);
    }

    // Newest entries still hit; the evicted oldest one recomputes.
    EXPECT_TRUE(
        std::get<test_length_response>(query(0.999).payload).cached);
    EXPECT_TRUE(std::get<test_length_response>(query(0.99).payload).cached);
    EXPECT_FALSE(std::get<test_length_response>(query(0.9).payload).cached);
}

TEST(service, cache_accounting_balances_even_when_jobs_fail) {
    service s;
    const std::size_t c = load_comparator(s, "svc_balance");

    auto stats_of = [&] {
        request sq;
        sq.payload = stats_request{};
        return std::get<stats_response>(s.handle(sq).payload);
    };

    // A job that fails deep in the pipeline (patterns=0 passes request
    // validation but throws inside the simulator) was still probed; it
    // must be accounted as a miss, not dropped on the floor.
    request bad;
    matrix_request m;
    m.kind = job_kind::fault_sim;
    m.circuits = {c};
    // Two spellings of the same doomed query: one computes (and fails),
    // the duplicate rides the same failure — both are misses.
    m.weight_sets = {weight_vector{},
                     uniform_weights(s.session().circuit(c))};
    m.patterns = 0;
    bad.payload = std::move(m);
    const response r = s.handle(bad);
    ASSERT_TRUE(r.ok);
    const auto& mr = std::get<matrix_response>(r.payload);
    ASSERT_EQ(mr.results.size(), 2u);
    EXPECT_FALSE(mr.results[0].ok);
    EXPECT_FALSE(mr.results[1].ok);
    {
        const auto st = stats_of();
        EXPECT_EQ(st.cache_probes, 2u);
        EXPECT_EQ(st.cache_misses, 2u);
        EXPECT_EQ(st.cache_hits, 0u);
        EXPECT_EQ(st.cache_entries, 0u);  // failures are never cached
    }

    // Mixed successes keep the invariant: probes == hits + misses.
    request good;
    test_length_request p;
    p.circuit = c;
    good.payload = p;
    ASSERT_TRUE(s.handle(good).ok);
    ASSERT_TRUE(s.handle(good).ok);
    const auto st = stats_of();
    EXPECT_EQ(st.cache_probes, st.cache_hits + st.cache_misses);
    EXPECT_EQ(st.cache_probes, 4u);
    EXPECT_EQ(st.cache_hits, 1u);
    EXPECT_EQ(st.cache_misses, 3u);
}

TEST(service, orphaned_buckets_count_each_evicted_entry_exactly_once) {
    service s;
    request reg;
    register_circuit_request rp;
    rp.tenant = "t";
    rp.name = "orphan";
    rp.bench = write_bench_string(make_cascaded_comparator(2, "orphan"));
    reg.payload = std::move(rp);
    ASSERT_TRUE(s.handle(reg).ok);

    auto query = [&](double confidence) {
        request q;
        test_length_request p;
        p.name = "t/orphan";
        p.confidence = confidence;
        q.payload = p;
        return s.handle(q);
    };
    auto stats_of = [&] {
        request sq;
        sq.payload = stats_request{};
        return std::get<stats_response>(s.handle(sq).payload);
    };

    ASSERT_TRUE(query(0.9).ok);
    ASSERT_TRUE(query(0.99).ok);
    ASSERT_EQ(stats_of().cache_entries, 2u);

    // A reload re-stamps the revision; the first insert under the new
    // revision orphans the whole stale bucket, counting each of its two
    // entries exactly once.
    request rel;
    reload_circuit_request lp;
    lp.tenant = "t";
    lp.name = "orphan";
    lp.bench = write_bench_string(make_cascaded_comparator(2, "orphan"));
    rel.payload = std::move(lp);
    ASSERT_TRUE(s.handle(rel).ok);
    ASSERT_TRUE(query(0.9).ok);  // miss; insert orphans the old bucket
    std::uint64_t evictions = 0;
    {
        const auto st = stats_of();
        EXPECT_EQ(st.cache_evictions, 2u);
        EXPECT_EQ(st.cache_entries, 1u);
        EXPECT_EQ(st.cache_probes, st.cache_hits + st.cache_misses);
        evictions = st.cache_evictions;
    }

    // Explicit per-circuit evict counts its one live entry, and the
    // counter only ever moves up (monotonicity: no double counting, no
    // correction underflow).
    request eq;
    evict_request ep;
    ep.all = true;
    eq.payload = ep;
    ASSERT_TRUE(s.handle(eq).ok);
    const auto st = stats_of();
    EXPECT_EQ(st.cache_evictions, evictions + 1);
    EXPECT_EQ(st.cache_entries, 0u);
    EXPECT_GE(st.cache_evictions, evictions);
}

}  // namespace
}  // namespace wrpt
