// Tests for the ROBDD engine: Boolean identities, exact weighted
// probabilities vs enumeration, node budgets.

#include "bdd/bdd.h"

#include <gtest/gtest.h>

#include "gen/random_circuit.h"
#include "sim/logic_sim.h"
#include "util/error.h"
#include "util/rng.h"

namespace wrpt {
namespace {

TEST(bdd, terminals_and_vars) {
    bdd_manager m(3);
    EXPECT_EQ(m.lnot(bdd_manager::zero()), bdd_manager::one());
    EXPECT_EQ(m.lnot(bdd_manager::one()), bdd_manager::zero());
    const auto x = m.var(0);
    EXPECT_EQ(m.lnot(m.lnot(x)), x);
    EXPECT_THROW(m.var(3), invalid_input);
}

TEST(bdd, boolean_identities) {
    bdd_manager m(3);
    const auto a = m.var(0), b = m.var(1), c = m.var(2);
    EXPECT_EQ(m.land(a, a), a);
    EXPECT_EQ(m.land(a, m.lnot(a)), bdd_manager::zero());
    EXPECT_EQ(m.lor(a, m.lnot(a)), bdd_manager::one());
    EXPECT_EQ(m.lxor(a, a), bdd_manager::zero());
    EXPECT_EQ(m.lxnor(a, a), bdd_manager::one());
    // De Morgan.
    EXPECT_EQ(m.lnot(m.land(a, b)), m.lor(m.lnot(a), m.lnot(b)));
    // Associativity / commutativity give identical canonical nodes.
    EXPECT_EQ(m.land(a, m.land(b, c)), m.land(m.land(a, b), c));
    EXPECT_EQ(m.lor(a, b), m.lor(b, a));
    // Shannon: f = (a & f|a=1) | (~a & f|a=0) implicitly via ite.
    EXPECT_EQ(m.ite(a, b, c), m.lor(m.land(a, b), m.land(m.lnot(a), c)));
}

TEST(bdd, sat_fraction_known_functions) {
    bdd_manager m(4);
    const auto a = m.var(0), b = m.var(1), c = m.var(2), d = m.var(3);
    EXPECT_DOUBLE_EQ(m.sat_fraction(bdd_manager::zero()), 0.0);
    EXPECT_DOUBLE_EQ(m.sat_fraction(bdd_manager::one()), 1.0);
    EXPECT_DOUBLE_EQ(m.sat_fraction(a), 0.5);
    EXPECT_DOUBLE_EQ(m.sat_fraction(m.land(a, b)), 0.25);
    const auto and4 = m.land(m.land(a, b), m.land(c, d));
    EXPECT_DOUBLE_EQ(m.sat_fraction(and4), 1.0 / 16.0);
    const auto parity = m.lxor(m.lxor(a, b), m.lxor(c, d));
    EXPECT_DOUBLE_EQ(m.sat_fraction(parity), 0.5);
}

TEST(bdd, weighted_probability) {
    bdd_manager m(2);
    const auto a = m.var(0), b = m.var(1);
    const double w[2] = {0.2, 0.7};
    EXPECT_NEAR(m.sat_probability(m.land(a, b), w), 0.14, 1e-12);
    EXPECT_NEAR(m.sat_probability(m.lor(a, b), w), 0.2 + 0.7 - 0.14, 1e-12);
    EXPECT_NEAR(m.sat_probability(m.lxor(a, b), w),
                0.2 * 0.3 + 0.8 * 0.7, 1e-12);
}

TEST(bdd, node_limit_throws) {
    bdd_manager m(24, 64);  // absurdly small budget
    auto acc = bdd_manager::zero();
    EXPECT_THROW(
        {
            for (std::uint32_t v = 0; v + 1 < 24; v += 2)
                acc = m.lor(acc, m.land(m.var(v), m.var(v + 1)));
        },
        budget_exhausted);
}

class bdd_seeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(bdd_seeds, node_bdds_match_simulation) {
    random_circuit_spec spec;
    spec.inputs = 8;
    spec.gates = 60;
    spec.seed = GetParam();
    const netlist nl = make_random_circuit(spec);
    bdd_manager m(8);
    const auto refs = build_node_bdds(m, nl);

    // Exhaustive: every assignment, every node.
    simulator sim(nl);
    for (std::uint64_t base = 0; base < 256; base += 64) {
        std::vector<std::uint64_t> words(8);
        for (std::size_t i = 0; i < 8; ++i) {
            std::uint64_t w = 0;
            for (std::uint64_t b = 0; b < 64; ++b)
                if (((base + b) >> i) & 1ULL) w |= (1ULL << b);
            words[i] = w;
        }
        sim.simulate(words);
        for (std::uint64_t b = 0; b < 64; ++b) {
            double point[8];
            for (std::size_t i = 0; i < 8; ++i)
                point[i] = (((base + b) >> i) & 1ULL) ? 1.0 : 0.0;
            for (node_id n = 0; n < nl.node_count(); ++n) {
                const bool sim_bit = ((sim.value(n) >> b) & 1ULL) != 0;
                const double p = m.sat_probability(refs[n], point);
                ASSERT_EQ(sim_bit, p > 0.5)
                    << "seed " << spec.seed << " node " << n;
            }
        }
    }
}

TEST_P(bdd_seeds, weighted_probability_matches_enumeration) {
    random_circuit_spec spec;
    spec.inputs = 7;
    spec.gates = 40;
    spec.seed = GetParam() + 1000;
    const netlist nl = make_random_circuit(spec);
    bdd_manager m(7);
    const auto refs = build_node_bdds(m, nl);

    rng r(spec.seed);
    std::vector<double> w(7);
    for (auto& x : w) x = 0.05 + 0.9 * r.next_double();

    // Enumerate all 128 assignments and accumulate weighted truth.
    std::vector<double> expect(nl.node_count(), 0.0);
    for (std::uint64_t v = 0; v < 128; ++v) {
        std::vector<bool> in(7);
        double weight = 1.0;
        for (std::size_t i = 0; i < 7; ++i) {
            in[i] = ((v >> i) & 1ULL) != 0;
            weight *= in[i] ? w[i] : 1.0 - w[i];
        }
        simulator sim(nl);
        std::vector<std::uint64_t> words(7);
        for (std::size_t i = 0; i < 7; ++i) words[i] = in[i] ? 1 : 0;
        sim.simulate(words);
        for (node_id n = 0; n < nl.node_count(); ++n)
            if (sim.value(n) & 1ULL) expect[n] += weight;
    }
    for (node_id n = 0; n < nl.node_count(); ++n)
        EXPECT_NEAR(m.sat_probability(refs[n], w), expect[n], 1e-9)
            << "node " << n;
}

INSTANTIATE_TEST_SUITE_P(seeds, bdd_seeds, ::testing::Values(1, 5, 9, 14));

}  // namespace
}  // namespace wrpt
