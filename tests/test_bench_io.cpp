// Tests for the .bench reader/writer and weights files.

#include "io/bench_io.h"

#include <sstream>

#include <gtest/gtest.h>

#include "gen/comparator.h"
#include "gen/random_circuit.h"
#include "helpers.h"
#include "io/weights_io.h"
#include "sim/logic_sim.h"
#include "util/error.h"

namespace wrpt {
namespace {

using ::wrpt::testing::expect_equivalent;

constexpr const char* simple_bench = R"(
# a tiny circuit
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G10 = NAND(G1, G2)
G17 = NOR(G10, G3)
)";

TEST(bench_reader, parses_simple_circuit) {
    const netlist nl = read_bench_string(simple_bench, "tiny");
    EXPECT_EQ(nl.input_count(), 3u);
    EXPECT_EQ(nl.output_count(), 1u);
    EXPECT_EQ(nl.kind(nl.find("G10")), gate_kind::nand_);
    EXPECT_EQ(nl.kind(nl.find("G17")), gate_kind::nor_);
    // NAND(0,0)=1, NOR(1,0)=0.
    EXPECT_EQ(evaluate(nl, {false, false, false})[0], false);
    // NAND(1,1)=0, NOR(0,0)=1.
    EXPECT_EQ(evaluate(nl, {true, true, false})[0], true);
}

TEST(bench_reader, handles_out_of_order_definitions) {
    const std::string text = R"(
OUTPUT(y)
y = AND(m, n)
m = NOT(a)
INPUT(a)
INPUT(b)
n = OR(a, b)
)";
    const netlist nl = read_bench_string(text);
    EXPECT_EQ(nl.node_count(), 5u);
    EXPECT_EQ(evaluate(nl, {false, true})[0], true);  // ~0 & (0|1)
}

TEST(bench_reader, rejects_cycles) {
    const std::string text = R"(
INPUT(a)
OUTPUT(x)
x = AND(a, y)
y = NOT(x)
)";
    EXPECT_THROW(read_bench_string(text), invalid_input);
}

TEST(bench_reader, rejects_undefined_signal) {
    EXPECT_THROW(read_bench_string("INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n"),
                 invalid_input);
}

TEST(bench_reader, rejects_unknown_gate) {
    EXPECT_THROW(read_bench_string("INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n"),
                 invalid_input);
}

TEST(bench_reader, rejects_duplicate_definition) {
    const std::string text = R"(
INPUT(a)
OUTPUT(y)
y = NOT(a)
y = BUF(a)
)";
    EXPECT_THROW(read_bench_string(text), invalid_input);
}

TEST(bench_reader, rejects_undefined_output) {
    EXPECT_THROW(read_bench_string("INPUT(a)\nOUTPUT(nope)\n"), invalid_input);
}

TEST(bench_reader, comments_and_blank_lines_ignored) {
    const std::string text =
        "# header\n\nINPUT(a)  # trailing comment\nOUTPUT(y)\ny = NOT(a)\n";
    EXPECT_NO_THROW(read_bench_string(text));
}

TEST(bench_writer, round_trips_generated_circuit) {
    random_circuit_spec spec;
    spec.inputs = 7;
    spec.gates = 60;
    spec.seed = 99;
    const netlist nl = make_random_circuit(spec);
    const netlist back = read_bench_string(write_bench_string(nl), nl.name());
    expect_equivalent(nl, back);
}

TEST(bench_writer, round_trips_comparator) {
    const netlist nl = make_cascaded_comparator(2, "cmp8");
    const netlist back = read_bench_string(write_bench_string(nl));
    expect_equivalent(nl, back);
}

TEST(weights_io, round_trip) {
    const netlist nl = read_bench_string(simple_bench);
    weight_vector w{0.25, 0.5, 0.95};
    std::ostringstream out;
    write_weights(out, nl, w);
    std::istringstream in(out.str());
    const weight_vector back = read_weights(in, nl);
    ASSERT_EQ(back.size(), w.size());
    for (std::size_t i = 0; i < w.size(); ++i) EXPECT_NEAR(back[i], w[i], 1e-9);
}

TEST(weights_io, uniform_weights) {
    const netlist nl = read_bench_string(simple_bench);
    const weight_vector w = uniform_weights(nl, 0.5);
    EXPECT_EQ(w.size(), 3u);
    EXPECT_DOUBLE_EQ(w[0], 0.5);
    EXPECT_THROW(uniform_weights(nl, 1.5), invalid_input);
}

TEST(weights_io, rejects_bad_files) {
    const netlist nl = read_bench_string(simple_bench);
    std::istringstream missing("G1 0.5\nG2 0.5\n");  // G3 unassigned
    EXPECT_THROW(read_weights(missing, nl), invalid_input);
    std::istringstream twice("G1 0.5\nG1 0.6\nG2 0.5\nG3 0.5\n");
    EXPECT_THROW(read_weights(twice, nl), invalid_input);
    std::istringstream range("G1 1.5\nG2 0.5\nG3 0.5\n");
    EXPECT_THROW(read_weights(range, nl), invalid_input);
    std::istringstream unknown("G1 0.5\nG2 0.5\nG3 0.5\nG10 0.5\n");
    EXPECT_THROW(read_weights(unknown, nl), invalid_input);
}

}  // namespace
}  // namespace wrpt
