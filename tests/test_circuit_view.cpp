// Tests for the compiled circuit_view core and the refactor's equivalence
// guarantees: view structure vs the netlist it compiles, incremental
// cone-restricted COP updates vs full recomputation, and block-parallel vs
// sequential fault simulation.

#include "core/circuit_view.h"

#include <thread>

#include <gtest/gtest.h>

#include "core/gate_eval.h"
#include "fault/fault.h"
#include "gen/comparator.h"
#include "gen/random_circuit.h"
#include "gen/sharded.h"
#include "io/weights_io.h"
#include "prob/cop_engine.h"
#include "prob/detect.h"
#include "prob/observability.h"
#include "prob/signal_prob.h"
#include "sim/fault_sim.h"
#include "sim/logic_sim.h"
#include "util/rng.h"

namespace wrpt {
namespace {

netlist make_test_circuit(std::uint64_t seed, std::size_t inputs = 10,
                          std::size_t gates = 120) {
    random_circuit_spec spec;
    spec.inputs = inputs;
    spec.gates = gates;
    spec.seed = seed;
    return make_random_circuit(spec);
}

circuit_view compile_with_cones(const netlist& nl) {
    circuit_view::compile_options co;
    co.input_cones = true;
    co.driven_pins = true;
    return circuit_view::compile(nl, co);
}

// --- structure ----------------------------------------------------------

class view_seeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(view_seeds, structure_matches_netlist) {
    const netlist nl = make_test_circuit(GetParam());
    const circuit_view cv = compile_with_cones(nl);

    ASSERT_EQ(cv.node_count(), nl.node_count());
    ASSERT_EQ(cv.input_count(), nl.input_count());
    ASSERT_EQ(cv.output_count(), nl.output_count());
    EXPECT_EQ(cv.depth(), nl.depth());

    for (node_id n = 0; n < nl.node_count(); ++n) {
        EXPECT_EQ(cv.kind(n), nl.kind(n));
        EXPECT_EQ(cv.level(n), nl.level(n));
        EXPECT_EQ(cv.is_output(n), nl.is_output(n));
        EXPECT_EQ(cv.input_index(n), nl.input_index(n));
        const auto vfi = cv.fanins(n);
        const auto nfi = nl.fanins(n);
        ASSERT_EQ(vfi.size(), nfi.size());
        for (std::size_t k = 0; k < vfi.size(); ++k) {
            EXPECT_EQ(vfi[k], nfi[k]);
            // Topological levelization: every edge increases the level.
            EXPECT_LT(cv.level(vfi[k]), cv.level(n));
        }
        const auto vfo = cv.fanouts(n);
        const auto nfo = nl.fanouts(n);
        ASSERT_EQ(vfo.size(), nfo.size());
        for (std::size_t k = 0; k < vfo.size(); ++k) EXPECT_EQ(vfo[k], nfo[k]);
    }

    // Level buckets partition the nodes and agree with level().
    std::size_t bucketed = 0;
    for (std::size_t l = 0; l <= cv.depth(); ++l) {
        for (node_id n : cv.nodes_at_level(l)) {
            EXPECT_EQ(cv.level(n), l);
            ++bucketed;
        }
    }
    EXPECT_EQ(bucketed, cv.node_count());
}

TEST_P(view_seeds, input_cones_match_netlist_fanout_cones) {
    const netlist nl = make_test_circuit(GetParam());
    const circuit_view cv = compile_with_cones(nl);
    ASSERT_TRUE(cv.has_input_cones());
    for (std::size_t i = 0; i < nl.input_count(); ++i) {
        const auto cone = cv.input_cone(i);
        const auto expected = nl.fanout_cone(nl.inputs()[i]);
        ASSERT_EQ(cone.size(), expected.size()) << "input " << i;
        for (std::size_t k = 0; k < cone.size(); ++k)
            EXPECT_EQ(cone[k], expected[k]);
        // Topological (ascending id) order, starting at the input.
        EXPECT_EQ(cone.front(), nl.inputs()[i]);
        for (std::size_t k = 1; k < cone.size(); ++k)
            EXPECT_LT(cone[k - 1], cone[k]);
    }
}

// --- incremental COP vs full recompute ----------------------------------

TEST_P(view_seeds, incremental_cop_update_matches_full_recompute) {
    const netlist nl = make_test_circuit(GetParam());
    const circuit_view cv = compile_with_cones(nl);

    weight_vector w(nl.input_count(), 0.5);
    cop_engine engine(cv, w);

    rng r(GetParam() * 31 + 7);
    for (int step = 0; step < 25; ++step) {
        const std::size_t i = r.next_below(nl.input_count());
        const double v = 0.05 + 0.9 * r.next_double();
        w[i] = v;
        engine.set_input(i, v);

        const std::vector<double> full_p = cop_signal_probabilities(cv, w);
        const observability_result full_obs = cop_observabilities(cv, full_p);
        ASSERT_EQ(engine.probabilities().size(), full_p.size());
        for (node_id n = 0; n < nl.node_count(); ++n) {
            ASSERT_DOUBLE_EQ(engine.probabilities()[n], full_p[n])
                << "node " << n << " step " << step;
            ASSERT_DOUBLE_EQ(engine.stem_observability()[n], full_obs.stem[n])
                << "node " << n << " step " << step;
            for (std::size_t k = 0; k < nl.fanin_count(n); ++k)
                ASSERT_DOUBLE_EQ(engine.pin_observability(n, k),
                                 full_obs.pin_obs(n, k))
                    << "pin " << n << "." << k << " step " << step;
        }
    }
}

TEST_P(view_seeds, multi_input_move_matches_full_recompute) {
    // set_inputs with several simultaneous moves (the saddle-escape probe
    // shape) must land on exactly the state a full recompute produces:
    // one forward pass over the union of the moved cones, one backward
    // pass.
    const netlist nl = make_test_circuit(GetParam());
    const circuit_view cv = compile_with_cones(nl);

    weight_vector w(nl.input_count(), 0.5);
    cop_engine engine(cv, w);

    rng r(GetParam() * 57 + 11);
    for (int step = 0; step < 10; ++step) {
        const std::size_t count = 1 + r.next_below(nl.input_count());
        probe moves;
        std::vector<std::uint8_t> used(nl.input_count(), 0);
        for (std::size_t m = 0; m < count; ++m) {
            const std::size_t i = r.next_below(nl.input_count());
            if (used[i]) continue;
            used[i] = 1;
            const double v = 0.05 + 0.9 * r.next_double();
            moves.push_back({i, v});
            w[i] = v;
        }
        engine.set_inputs(moves);

        const std::vector<double> full_p = cop_signal_probabilities(cv, w);
        const observability_result full_obs = cop_observabilities(cv, full_p);
        for (node_id n = 0; n < nl.node_count(); ++n) {
            ASSERT_DOUBLE_EQ(engine.probabilities()[n], full_p[n])
                << "node " << n << " step " << step;
            ASSERT_DOUBLE_EQ(engine.stem_observability()[n], full_obs.stem[n])
                << "node " << n << " step " << step;
            for (std::size_t k = 0; k < nl.fanin_count(n); ++k)
                ASSERT_DOUBLE_EQ(engine.pin_observability(n, k),
                                 full_obs.pin_obs(n, k))
                    << "pin " << n << "." << k << " step " << step;
        }
    }
}

TEST_P(view_seeds, multi_input_move_rollback_restores_exact_state) {
    const netlist nl = make_test_circuit(GetParam());
    const circuit_view cv = compile_with_cones(nl);
    weight_vector w(nl.input_count());
    rng r(GetParam() + 29);
    for (double& x : w) x = 0.1 + 0.8 * r.next_double();
    cop_engine engine(cv, w);

    const std::vector<double> p_before(engine.probabilities().begin(),
                                       engine.probabilities().end());
    const std::vector<double> stem_before(engine.stem_observability().begin(),
                                          engine.stem_observability().end());

    for (int round = 0; round < 6; ++round) {
        probe moves;
        for (std::size_t i = 0; i < nl.input_count(); i += 1 + round % 3)
            moves.push_back({i, round % 2 == 0 ? 0.05 : 0.95});
        const cop_engine::checkpoint ck = engine.mark();
        engine.set_inputs(moves);
        engine.rollback(ck);
    }
    EXPECT_EQ(engine.weights(), w);
    for (node_id n = 0; n < nl.node_count(); ++n) {
        ASSERT_EQ(engine.probabilities()[n], p_before[n]) << "node " << n;
        ASSERT_EQ(engine.stem_observability()[n], stem_before[n])
            << "node " << n;
    }
}

TEST_P(view_seeds, cop_engine_rollback_restores_exact_state) {
    const netlist nl = make_test_circuit(GetParam());
    const circuit_view cv = compile_with_cones(nl);
    weight_vector w(nl.input_count());
    rng r(GetParam() + 5);
    for (double& x : w) x = 0.1 + 0.8 * r.next_double();
    cop_engine engine(cv, w);

    const std::vector<double> p_before(engine.probabilities().begin(),
                                       engine.probabilities().end());
    const std::vector<double> stem_before(engine.stem_observability().begin(),
                                          engine.stem_observability().end());

    for (int probe = 0; probe < 10; ++probe) {
        const std::size_t i = r.next_below(nl.input_count());
        const cop_engine::checkpoint ck = engine.mark();
        engine.set_input(i, probe % 2 == 0 ? 0.05 : 0.95);
        engine.rollback(ck);
    }
    EXPECT_EQ(engine.weights(), w);
    for (node_id n = 0; n < nl.node_count(); ++n) {
        ASSERT_EQ(engine.probabilities()[n], p_before[n]) << "node " << n;
        ASSERT_EQ(engine.stem_observability()[n], stem_before[n])
            << "node " << n;
    }
}

TEST_P(view_seeds, cop_estimator_delta_matches_full_estimate) {
    const netlist nl = make_test_circuit(GetParam());
    const auto faults = generate_full_faults(nl);

    cop_detect_estimator incremental;
    incremental.set_engine_cone_limit(1.0);  // force the engine path
    cop_detect_estimator full;
    full.set_incremental(false);

    weight_vector base(nl.input_count(), 0.5);
    rng r(GetParam() * 13 + 3);
    for (int step = 0; step < 6; ++step) {
        const std::size_t i = r.next_below(nl.input_count());
        const double v = 0.05 + 0.9 * r.next_double();
        const auto a = incremental.estimate_input_delta(nl, faults, base, i, v);
        const auto b = full.estimate_input_delta(nl, faults, base, i, v);
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t k = 0; k < a.size(); ++k)
            ASSERT_DOUBLE_EQ(a[k], b[k]) << to_string(nl, faults[k]);
        // Move the base the way a coordinate-descent sweep does.
        base[i] = 0.1 + 0.8 * r.next_double();
        const auto ea = incremental.estimate(nl, faults, base);
        const auto eb = full.estimate(nl, faults, base);
        for (std::size_t k = 0; k < ea.size(); ++k)
            ASSERT_DOUBLE_EQ(ea[k], eb[k]) << to_string(nl, faults[k]);
    }
}

// --- parallel vs sequential fault simulation ----------------------------

TEST_P(view_seeds, parallel_fault_sim_matches_sequential) {
    const netlist nl = make_test_circuit(GetParam(), 12, 160);
    const auto faults = generate_full_faults(nl);

    fault_sim_options seq;
    seq.max_patterns = 500;  // non-multiple of 64: exercises the tail block
    seq.threads = 1;
    fault_sim_options par = seq;
    par.threads = 4;

    for (const bool drop : {true, false}) {
        fault_sim_options s = seq, p = par;
        s.drop_detected = p.drop_detected = drop;
        const auto a = run_weighted_fault_simulation(
            nl, faults, uniform_weights(nl), 0xfeed, s);
        const auto b = run_weighted_fault_simulation(
            nl, faults, uniform_weights(nl), 0xfeed, p);
        EXPECT_EQ(a.patterns_applied, b.patterns_applied) << "drop " << drop;
        EXPECT_EQ(a.detected_count, b.detected_count) << "drop " << drop;
        ASSERT_EQ(a.first_detected.size(), b.first_detected.size());
        for (std::size_t i = 0; i < a.first_detected.size(); ++i)
            EXPECT_EQ(a.first_detected[i], b.first_detected[i])
                << to_string(nl, faults[i]) << " drop " << drop;
    }
}

TEST(parallel_fault_sim, early_stop_accounting_matches_sequential) {
    // Fully random-testable circuit: both paths stop before the budget.
    const netlist nl = make_cascaded_comparator(1);
    const auto faults = generate_full_faults(nl);
    fault_sim_options seq;
    seq.max_patterns = 4096;
    seq.threads = 1;
    fault_sim_options par = seq;
    par.threads = 3;
    const auto a =
        run_weighted_fault_simulation(nl, faults, uniform_weights(nl), 11, seq);
    const auto b =
        run_weighted_fault_simulation(nl, faults, uniform_weights(nl), 11, par);
    EXPECT_EQ(a.detected_count, faults.size());
    EXPECT_EQ(a.patterns_applied, b.patterns_applied);
    for (std::size_t i = 0; i < a.first_detected.size(); ++i)
        EXPECT_EQ(a.first_detected[i], b.first_detected[i]);
}

// --- thread-safe lazy fanouts -------------------------------------------

TEST(netlist_concurrency, concurrent_fanout_queries_are_safe) {
    // The lazy fanout build used to flip a plain mutable flag from const
    // accessors; under TSan (and occasionally in release) concurrent first
    // queries raced. Hammer a fresh netlist from several threads.
    for (int round = 0; round < 8; ++round) {
        const netlist nl = make_test_circuit(1000 + round, 10, 200);
        std::vector<std::thread> pool;
        std::atomic<std::size_t> total{0};
        for (int t = 0; t < 4; ++t) {
            pool.emplace_back([&nl, &total] {
                std::size_t sum = 0;
                for (node_id n = 0; n < nl.node_count(); ++n)
                    sum += nl.fanouts(n).size();
                total.fetch_add(sum);
            });
        }
        for (auto& t : pool) t.join();
        std::size_t edges = 0;
        for (node_id n = 0; n < nl.node_count(); ++n)
            edges += nl.fanin_count(n);
        EXPECT_EQ(total.load(), 4 * edges);
    }
}

// --- sharded comparator generator ---------------------------------------

TEST(sharded_comparators, parity_semantics_and_local_cones) {
    const std::size_t slices = 8, width = 4;
    const netlist nl = make_sharded_comparators(slices, width);
    nl.validate();
    ASSERT_EQ(nl.input_count(), slices * width + (slices / 2) * width);
    ASSERT_EQ(nl.output_count(), 1u);

    // Output parity counts slices whose a-bus equals the shared b-bus.
    std::vector<bool> pattern(nl.input_count(), false);
    // All zero: every slice matches its bus -> parity of 8 matches = 0.
    EXPECT_FALSE(evaluate(nl, pattern)[0]);
    // Flip one a-bit: one slice mismatches -> 7 matches, parity = 1.
    pattern[nl.input_index(nl.find("a0_0"))] = true;
    EXPECT_TRUE(evaluate(nl, pattern)[0]);

    // Input cones stay local: a slice pair plus the compactor tail, far
    // below the node count (the property the incremental engine exploits).
    const circuit_view cv = compile_with_cones(nl);
    for (std::size_t i = 0; i < cv.input_count(); ++i)
        EXPECT_LT(cv.input_cone(i).size(), cv.node_count() / 2) << i;
}

TEST(sharded_comparators, incremental_cop_matches_full) {
    const netlist nl = make_sharded_comparators(6, 3);
    const circuit_view cv = compile_with_cones(nl);
    weight_vector w(nl.input_count(), 0.5);
    cop_engine engine(cv, w);
    rng r(77);
    for (int step = 0; step < 12; ++step) {
        const std::size_t i = r.next_below(nl.input_count());
        const double v = 0.05 + 0.9 * r.next_double();
        w[i] = v;
        engine.set_input(i, v);
        const std::vector<double> full_p = cop_signal_probabilities(cv, w);
        const observability_result full_obs = cop_observabilities(cv, full_p);
        for (node_id n = 0; n < nl.node_count(); ++n) {
            ASSERT_DOUBLE_EQ(engine.probabilities()[n], full_p[n]) << n;
            ASSERT_DOUBLE_EQ(engine.stem_observability()[n], full_obs.stem[n])
                << n;
        }
    }
}

// --- gate_eval algebra cross-checks -------------------------------------

TEST(gate_eval, word_and_bool_algebras_agree) {
    const gate_kind kinds[] = {gate_kind::buf,  gate_kind::not_,
                               gate_kind::and_, gate_kind::nand_,
                               gate_kind::or_,  gate_kind::nor_,
                               gate_kind::xor_, gate_kind::xnor_};
    rng r(99);
    for (gate_kind k : kinds) {
        const std::size_t arity =
            (k == gate_kind::buf || k == gate_kind::not_) ? 1 : 3;
        for (int trial = 0; trial < 16; ++trial) {
            std::uint64_t words[3];
            bool bits[3];
            for (std::size_t a = 0; a < arity; ++a) {
                words[a] = r.next_word();
                bits[a] = (words[a] & 1ULL) != 0;
            }
            const std::uint64_t w = eval_gate(word_algebra{}, k, words, arity);
            const bool b = eval_gate(bool_algebra{}, k, bits, arity);
            EXPECT_EQ((w & 1ULL) != 0, b) << to_string(k);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(seeds, view_seeds,
                         ::testing::Values(3, 7, 12, 21, 42));

}  // namespace
}  // namespace wrpt
