// Tests for the exec-layer engine pool: checkout/return semantics, lazy
// build, incremental re-sync, counters, and thread-safety under the
// work-stealing pool.

#include "exec/engine_pool.h"

#include <gtest/gtest.h>

#include "core/circuit_view.h"
#include "exec/thread_pool.h"
#include "fault/fault.h"
#include "gen/comparator.h"
#include "gen/sharded.h"
#include "prob/cop_engine.h"
#include "util/error.h"

namespace wrpt {
namespace {

circuit_view compile_engine_view(const netlist& nl) {
    circuit_view::compile_options co;
    co.input_cones = true;
    co.driven_pins = true;
    return circuit_view::compile(nl, co);
}

TEST(engine_pool, builds_lazily_then_reuses_warm_engines) {
    const netlist nl = make_cascaded_comparator(2, "cmp8pool");
    const circuit_view cv = compile_engine_view(nl);
    engine_pool pool(cv);
    EXPECT_EQ(pool.size(), 0u);
    EXPECT_EQ(pool.revision(), nl.revision());

    const weight_vector w = uniform_weights(nl);
    {
        engine_pool::lease lease = pool.checkout(w);
        EXPECT_TRUE(lease.fresh());
        EXPECT_EQ(lease.engine().weights(), w);
        EXPECT_EQ(pool.size(), 1u);
        EXPECT_EQ(pool.warm_count(), 0u);  // on loan
    }
    EXPECT_EQ(pool.warm_count(), 1u);  // returned warm

    {
        engine_pool::lease lease = pool.checkout(w);
        EXPECT_FALSE(lease.fresh());  // the warm engine, no rebuild
        EXPECT_EQ(pool.size(), 1u);
    }
    const engine_pool::counters st = pool.stats();
    EXPECT_EQ(st.misses, 1u);
    EXPECT_EQ(st.hits, 1u);
    EXPECT_EQ(st.resyncs, 0u);  // same weights both times
}

TEST(engine_pool, checkout_resyncs_to_the_requested_base) {
    const netlist nl = make_cascaded_comparator(2, "cmp8sync");
    const circuit_view cv = compile_engine_view(nl);
    engine_pool pool(cv);

    weight_vector w1 = uniform_weights(nl);
    weight_vector w2 = uniform_weights(nl);
    for (std::size_t i = 0; i < w2.size(); ++i)
        w2[i] = (i % 2 == 0) ? 0.9 : 0.1;

    { engine_pool::lease lease = pool.checkout(w1); }
    engine_pool::lease lease = pool.checkout(w2);
    EXPECT_FALSE(lease.fresh());
    EXPECT_EQ(lease.engine().weights(), w2);
    EXPECT_EQ(pool.stats().resyncs, 1u);

    // The re-synced state is bit-identical to a fresh analysis at w2 —
    // the invariant every sharded consumer of the pool relies on.
    const cop_engine reference(cv, w2);
    const auto faults = generate_full_faults(nl);
    for (const fault& f : faults)
        ASSERT_EQ(lease.engine().fault_probability(f),
                  reference.fault_probability(f))
            << to_string(nl, f);
}

TEST(engine_pool, rejects_wrong_sized_base_and_plain_views) {
    const netlist nl = make_cascaded_comparator(1, "cmp4bad");
    const circuit_view plain = circuit_view::compile(nl, {});
    EXPECT_THROW(engine_pool bad(plain), invalid_input);

    const circuit_view cv = compile_engine_view(nl);
    engine_pool pool(cv);
    EXPECT_THROW(pool.checkout(weight_vector(nl.input_count() + 1, 0.5)),
                 invalid_input);
}

TEST(engine_pool, lease_moves_transfer_ownership) {
    const netlist nl = make_cascaded_comparator(1, "cmp4mv");
    const circuit_view cv = compile_engine_view(nl);
    engine_pool pool(cv);

    engine_pool::lease a = pool.checkout(uniform_weights(nl));
    EXPECT_TRUE(static_cast<bool>(a));
    engine_pool::lease b = std::move(a);
    EXPECT_FALSE(static_cast<bool>(a));
    EXPECT_TRUE(static_cast<bool>(b));
    EXPECT_EQ(pool.warm_count(), 0u);
    b = engine_pool::lease();  // returns the engine
    EXPECT_EQ(pool.warm_count(), 1u);
}

TEST(engine_pool, concurrent_checkout_stress_under_thread_pool) {
    // Many tasks checkout/probe/return concurrently; every task must see
    // an engine exactly at its requested base, states bit-identical to
    // fresh analyses. Runs under TSan in CI.
    const netlist nl = make_sharded_comparators(6, 3);
    const circuit_view cv = compile_engine_view(nl);
    engine_pool pool(cv);
    const auto faults = generate_full_faults(nl);
    const weight_vector uniform = uniform_weights(nl);

    // A handful of reference states, computed sequentially.
    std::vector<weight_vector> bases;
    for (unsigned v = 0; v < 4; ++v) {
        weight_vector w = uniform;
        for (std::size_t i = 0; i < w.size(); ++i)
            w[i] = 0.1 + 0.05 * static_cast<double>((i + v) % 16);
        bases.push_back(std::move(w));
    }
    std::vector<std::vector<double>> expected;
    for (const weight_vector& w : bases) {
        const cop_engine ref(cv, w);
        std::vector<double> p;
        p.reserve(faults.size());
        for (const fault& f : faults) p.push_back(ref.fault_probability(f));
        expected.push_back(std::move(p));
    }

    constexpr std::size_t tasks = 64;
    std::vector<std::uint8_t> ok(tasks, 0);
    thread_pool workers(4);
    workers.parallel_for(tasks, [&](std::size_t t) {
        const std::size_t v = t % bases.size();
        engine_pool::lease lease = pool.checkout(bases[v]);
        bool good = lease.engine().weights() == bases[v];
        for (std::size_t j = 0; good && j < faults.size(); ++j)
            good = lease.engine().fault_probability(faults[j]) ==
                   expected[v][j];
        ok[t] = good ? 1 : 0;
    });
    for (std::size_t t = 0; t < tasks; ++t) EXPECT_EQ(ok[t], 1u) << t;

    const engine_pool::counters st = pool.stats();
    EXPECT_EQ(st.hits + st.misses, tasks);
    // Engines never exceed the peak concurrency (5 executors: 4 workers
    // + the caller), and all of them came home.
    EXPECT_LE(pool.size(), 5u);
    EXPECT_EQ(pool.warm_count(), pool.size());
}

TEST(engine_pool, capacity_cap_evicts_cold_engines_on_return) {
    const netlist nl = make_cascaded_comparator(2, "cmp8cap");
    const circuit_view cv = compile_engine_view(nl);
    engine_pool pool(cv);
    pool.set_capacity(2);
    EXPECT_EQ(pool.capacity(), 2u);

    const weight_vector w = uniform_weights(nl);
    {
        // A burst of four concurrent leases builds four engines —
        // checkouts never block on the cap...
        engine_pool::lease a = pool.checkout(w);
        engine_pool::lease b = pool.checkout(w);
        engine_pool::lease c = pool.checkout(w);
        engine_pool::lease d = pool.checkout(w);
        EXPECT_EQ(pool.size(), 4u);
        EXPECT_EQ(pool.stats().evictions, 0u);
    }
    // ...but as the burst drains only `capacity` warm engines survive.
    EXPECT_EQ(pool.warm_count(), 2u);
    EXPECT_EQ(pool.size(), 2u);
    EXPECT_EQ(pool.stats().evictions, 2u);

    // Warm checkouts still hit after the trim.
    const std::size_t hits_before = pool.stats().hits;
    { engine_pool::lease e = pool.checkout(w); }
    EXPECT_EQ(pool.stats().hits, hits_before + 1);
}

TEST(engine_pool, eviction_is_lru_by_checkout_stamp) {
    const netlist nl = make_cascaded_comparator(2, "cmp8lru");
    const circuit_view cv = compile_engine_view(nl);
    engine_pool pool(cv);

    weight_vector w1 = uniform_weights(nl);
    weight_vector w2 = w1;
    w2[0] = 0.25;
    // Two engines at distinguishable weights, held simultaneously so the
    // pool owns both; `first` has the older checkout stamp.
    {
        engine_pool::lease first = pool.checkout(w1);
        engine_pool::lease second = pool.checkout(w2);
    }
    EXPECT_EQ(pool.warm_count(), 2u);

    // Shrinking the cap to one must drop the least-recently checked-out
    // engine (w1's) and keep the newer one, regardless of return order.
    pool.set_capacity(1);
    EXPECT_EQ(pool.warm_count(), 1u);
    EXPECT_EQ(pool.stats().evictions, 1u);
    {
        engine_pool::lease survivor = pool.checkout(w2);
        EXPECT_FALSE(survivor.fresh());
        EXPECT_EQ(survivor.engine().weights(), w2);
        EXPECT_EQ(pool.stats().resyncs, 0u);  // already at w2: the newer one
    }
}

TEST(engine_pool, explicit_evict_drops_warm_engines_and_counts) {
    const netlist nl = make_cascaded_comparator(2, "cmp8evict");
    const circuit_view cv = compile_engine_view(nl);
    engine_pool pool(cv);

    const weight_vector w = uniform_weights(nl);
    {
        engine_pool::lease a = pool.checkout(w);
        engine_pool::lease b = pool.checkout(w);
        engine_pool::lease c = pool.checkout(w);
    }
    EXPECT_EQ(pool.warm_count(), 3u);

    EXPECT_EQ(pool.evict(1), 2u);
    EXPECT_EQ(pool.warm_count(), 1u);
    EXPECT_EQ(pool.size(), 1u);
    EXPECT_EQ(pool.stats().evictions, 2u);

    EXPECT_EQ(pool.evict(), 1u);  // drop everything
    EXPECT_EQ(pool.warm_count(), 0u);
    EXPECT_EQ(pool.size(), 0u);
    EXPECT_EQ(pool.stats().evictions, 3u);

    // The pool still works after a full purge: next checkout rebuilds.
    engine_pool::lease fresh = pool.checkout(w);
    EXPECT_TRUE(fresh.fresh());
}

}  // namespace
}  // namespace wrpt
