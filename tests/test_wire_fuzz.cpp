// Fuzz/property suite for the wire codec — the contract a long-lived
// daemon's parser must keep against arbitrary bytes: every generated
// valid request round-trips byte-identically, and every mutated,
// truncated or garbage line either decodes or throws wire_error — it
// never crashes, hangs, or escapes as a non-wrpt exception. extract_id
// must additionally be total: any byte salad yields *some* id without
// throwing.
//
// Everything is driven by the repo's deterministic splitmix/xoshiro rng,
// so a failure reproduces from the seed printed in the assertion message.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "svc/request.h"
#include "svc/wire.h"
#include "util/rng.h"

namespace wrpt::svc {
namespace {

// --- random request generator ----------------------------------------------

double finite_double(rng& r) {
    switch (r.next_below(6)) {
        case 0: return 0.0;
        case 1: return static_cast<double>(r.next_below(1u << 20));
        case 2: return std::ldexp(static_cast<double>(r.next_word() >> 11),
                                  -53);  // [0,1) at full precision
        case 3: return 1e-300 * static_cast<double>(r.next_below(1000));
        case 4: return -static_cast<double>(r.next_below(1 << 16)) / 3.0;
        default: {
            // Arbitrary finite bit patterns: re-roll the rare non-finite.
            for (;;) {
                std::uint64_t bits = r.next_word();
                double d;
                static_assert(sizeof bits == sizeof d);
                std::memcpy(&d, &bits, sizeof d);
                if (std::isfinite(d)) return d;
            }
        }
    }
}

std::string random_text(rng& r) {
    static const char* samples[] = {
        "",           "S1",          "a b c",        "quote\"back\\slash",
        "tab\there",  "new\nline",   "control\x01\x1f", "utf8 \xc3\xa9\xe2\x82\xac",
        "sock.bench", "/tmp/x.bench"};
    std::string s = samples[r.next_below(std::size(samples))];
    // Occasionally append random printable noise.
    const std::uint64_t extra = r.next_below(8);
    for (std::uint64_t i = 0; i < extra; ++i)
        s.push_back(static_cast<char>(' ' + r.next_below(95)));
    return s;
}

weight_vector random_weights(rng& r) {
    weight_vector w(r.next_below(12));
    for (double& x : w) x = finite_double(r);
    return w;
}

optimize_options random_options(rng& r) {
    optimize_options o;
    o.confidence = finite_double(r);
    o.alpha = finite_double(r);
    o.max_sweeps = r.next_below(100);
    o.weight_min = finite_double(r);
    o.weight_max = finite_double(r);
    o.grid = finite_double(r);
    o.max_relevant_faults = static_cast<std::size_t>(r.next_word());
    o.relevance_window = finite_double(r);
    o.saddle_escape = r.next_below(2) == 0;
    o.saddle_perturbation = finite_double(r);
    o.trust_step = finite_double(r);
    o.prepare_block = r.next_below(64);
    o.threads = static_cast<unsigned>(r.next_below(16));
    return o;
}

/// A registry address for name-addressed jobs and catalog requests:
/// sometimes empty (the field stays off the wire), sometimes a plain
/// token, sometimes hostile text with separators and escapes.
std::string random_name(rng& r) {
    switch (r.next_below(4)) {
        case 0: return "";
        case 1: return "acme/alu";
        case 2: return "t/" + std::to_string(r.next_below(1000));
        default: return random_text(r);
    }
}

request random_request(rng& r, int depth = 0) {
    request q;
    q.id = r.next_word();
    switch (r.next_below(depth == 0 ? 11 : 10)) {  // matrix only at top level
        case 0: {
            load_circuit_request p;
            p.name = random_text(r);
            p.bench = random_text(r);
            p.path = random_text(r);
            p.suite = random_text(r);
            q.payload = std::move(p);
            break;
        }
        case 1: {
            test_length_request p;
            p.circuit = static_cast<std::size_t>(r.next_word());
            p.name = random_name(r);
            p.weights = random_weights(r);
            p.confidence = finite_double(r);
            p.threads = static_cast<unsigned>(r.next_below(16));
            q.payload = std::move(p);
            break;
        }
        case 2: {
            optimize_request p;
            p.circuit = r.next_below(1000);
            p.name = random_name(r);
            p.weights = random_weights(r);
            p.options = random_options(r);
            q.payload = std::move(p);
            break;
        }
        case 3: {
            fault_sim_request p;
            p.circuit = r.next_below(1000);
            p.name = random_name(r);
            p.weights = random_weights(r);
            p.patterns = r.next_word();
            p.seed = r.next_word();
            q.payload = std::move(p);
            break;
        }
        case 4: {
            stats_request p;
            q.payload = p;
            break;
        }
        case 5: {
            evict_request p;
            p.all = r.next_below(2) == 0;
            p.circuit = r.next_below(1000);
            p.keep_engines = r.next_below(100);
            q.payload = p;
            break;
        }
        case 6: {
            q.payload = shutdown_request{};
            break;
        }
        case 7: {
            register_circuit_request p;
            p.tenant = random_text(r);
            p.name = random_name(r);
            p.bench = random_text(r);
            p.path = random_text(r);
            p.suite = random_text(r);
            q.payload = std::move(p);
            break;
        }
        case 8: {
            reload_circuit_request p;
            p.tenant = random_text(r);
            p.name = random_name(r);
            p.bench = random_text(r);
            p.path = random_text(r);
            p.suite = random_text(r);
            q.payload = std::move(p);
            break;
        }
        case 9: {
            list_circuits_request p;
            p.tenant = random_text(r);
            q.payload = std::move(p);
            break;
        }
        default: {
            matrix_request p;
            p.kind = static_cast<job_kind>(r.next_below(3));
            const std::uint64_t nc = r.next_below(5);
            for (std::uint64_t i = 0; i < nc; ++i)
                p.circuits.push_back(r.next_below(1000));
            const std::uint64_t nw = r.next_below(4);
            for (std::uint64_t i = 0; i < nw; ++i)
                p.weight_sets.push_back(random_weights(r));
            p.options = random_options(r);
            p.patterns = r.next_word();
            p.seed = r.next_word();
            p.confidence = finite_double(r);
            q.payload = std::move(p);
            break;
        }
    }
    return q;
}

// --- properties -------------------------------------------------------------

TEST(wire_fuzz, random_valid_requests_round_trip_byte_identically) {
    rng r(0xf022ed1);
    for (int trial = 0; trial < 2000; ++trial) {
        const request q = random_request(r);
        const std::string wire1 = encode(q);
        request back;
        ASSERT_NO_THROW(back = decode_request(wire1))
            << "trial " << trial << ": " << wire1;
        const std::string wire2 = encode(back);
        // Canonical-encoder contract: one decode/encode cycle is the
        // identity on the wire bytes.
        ASSERT_EQ(wire1, wire2) << "trial " << trial;
        // And so is a second cycle (no drift).
        ASSERT_EQ(encode(decode_request(wire2)), wire2) << "trial " << trial;
    }
}

/// Run one hostile line through the decoder: any outcome is fine except a
/// crash, a hang, or an exception that is not wire_error.
void expect_contained(const std::string& line, const char* what, int trial) {
    try {
        (void)decode_request(line);
    } catch (const wire_error&) {
        // The documented failure mode.
    } catch (const std::exception& e) {
        FAIL() << what << " trial " << trial
               << ": non-wire exception: " << e.what() << "\nline: " << line;
    }
    // extract_id is total: never throws, whatever the bytes.
    (void)extract_id(line);
}

TEST(wire_fuzz, mutated_requests_decode_or_raise_wire_error) {
    rng r(0xbadc0de);
    for (int trial = 0; trial < 4000; ++trial) {
        std::string line = encode(random_request(r));
        // 1-4 random byte edits: overwrite, insert, or delete.
        const std::uint64_t edits = 1 + r.next_below(4);
        for (std::uint64_t e = 0; e < edits && !line.empty(); ++e) {
            const std::size_t pos = r.next_below(line.size());
            switch (r.next_below(3)) {
                case 0: line[pos] = static_cast<char>(r.next_below(256)); break;
                case 1:
                    line.insert(pos, 1, static_cast<char>(r.next_below(256)));
                    break;
                default: line.erase(pos, 1); break;
            }
        }
        expect_contained(line, "mutated", trial);
    }
}

TEST(wire_fuzz, truncated_requests_decode_or_raise_wire_error) {
    rng r(0x7a61c);
    for (int trial = 0; trial < 2000; ++trial) {
        const std::string full = encode(random_request(r));
        const std::string line = full.substr(0, r.next_below(full.size() + 1));
        expect_contained(line, "truncated", trial);
    }
}

TEST(wire_fuzz, garbage_lines_decode_or_raise_wire_error) {
    rng r(0x6a2ba6e);
    for (int trial = 0; trial < 4000; ++trial) {
        std::string line(r.next_below(300), '\0');
        for (char& c : line) c = static_cast<char>(r.next_below(256));
        expect_contained(line, "garbage", trial);
    }
}

TEST(wire_fuzz, structured_garbage_decodes_or_raises_wire_error) {
    // JSON-shaped hostility the uniform generator rarely finds: deep
    // nesting (the 64-level cap), huge numbers, surrogate abuse, BOMs.
    const std::string cases[] = {
        std::string(100000, '['),
        std::string(100, '{') + "\"a\":1" + std::string(100, '}'),
        "{\"req\":\"optimize\",\"id\":1e999}",
        "{\"req\":\"test_length\",\"circuit\":99999999999999999999999999}",
        "{\"req\":\"fault_sim\",\"weights\":[1e309]}",
        "{\"req\":\"fault_sim\",\"weights\":[NaN]}",
        "{\"req\":\"fault_sim\",\"weights\":[Infinity]}",
        "{\"req\":\"load_circuit\",\"name\":\"\\ud800\"}",
        "{\"req\":\"load_circuit\",\"name\":\"\\udc00\\ud800\"}",
        "{\"req\":\"load_circuit\",\"name\":\"\\ud83d\\ude00\"}",  // valid pair
        "\xef\xbb\xbf{\"req\":\"stats\"}",
        "{\"req\":\"stats\",}",
        "{\"req\":\"stats\"} trailing",
        "{\"req\": \"stats\", \"id\": -1}",
        "{\"req\":\"matrix\",\"weight_sets\":[[[[[1]]]]]}",
        "{\"req\":\"register_circuit\"}",
        "{\"req\":\"register_circuit\",\"tenant\":7,\"name\":[]}",
        "{\"req\":\"reload_circuit\",\"tenant\":\"t\",\"name\":null}",
        "{\"req\":\"list_circuits\",\"tenant\":{\"a\":1}}",
        "{\"req\":\"test_length\",\"name\":\"t/c\",\"circuit\":\"t/c\"}",
        "null",
        "[]",
        "\"stats\"",
        "{}",
        "{\"id\":7}",
    };
    int trial = 0;
    for (const std::string& line : cases) expect_contained(line, "case", trial++);
}

TEST(wire_fuzz, extract_id_recovers_ids_from_broken_lines) {
    // A truncated request whose "id" field survived must still be
    // addressable, so the daemon's error envelope reaches the caller.
    rng r(0x1dc0ffee);
    for (int trial = 0; trial < 500; ++trial) {
        request q = random_request(r);
        q.id = 1 + r.next_below(1u << 30);  // nonzero, exactly recoverable
        std::string line = encode(q);
        // The canonical encoders place "id" first or second; keep the
        // prefix through the id value and truncate somewhere after it.
        const std::size_t id_pos = line.find("\"id\":");
        ASSERT_NE(id_pos, std::string::npos);
        std::size_t end = id_pos + 5;
        while (end < line.size() && line[end] >= '0' && line[end] <= '9')
            ++end;
        const std::string cut =
            line.substr(0, end + r.next_below(line.size() - end + 1));
        EXPECT_EQ(extract_id(cut), q.id) << "line: " << cut;
    }
    // Total on arbitrary bytes, 0 when no id can be recovered.
    EXPECT_EQ(extract_id(""), 0u);
    EXPECT_EQ(extract_id("not json at all"), 0u);
    EXPECT_EQ(extract_id("{\"id\":}"), 0u);
    EXPECT_EQ(extract_id("{\"id\":\"text\"}"), 0u);
    EXPECT_EQ(extract_id("{\"id\":42"), 42u);
    EXPECT_EQ(extract_id("garbage \"id\":7 garbage"), 7u);
}

TEST(wire_fuzz, responses_survive_mutation_too) {
    // decode_response shares the parser; exercise its kind dispatch with
    // mutated *response* lines (the client's hostile-server story).
    rng r(0x5e5510);
    for (int trial = 0; trial < 1000; ++trial) {
        response resp;
        resp.id = r.next_word();
        resp.ok = r.next_below(2) == 0;
        switch (r.next_below(6)) {
            case 0:
                resp.payload = error_response{random_text(r), random_text(r)};
                break;
            case 1: {
                register_circuit_response p;
                p.tenant = random_text(r);
                p.name = random_name(r);
                p.circuit = r.next_below(1000);
                p.revision = r.next_word();
                p.inputs = r.next_below(100);
                p.outputs = r.next_below(100);
                p.gates = r.next_below(10000);
                resp.payload = std::move(p);
                break;
            }
            case 2: {
                reload_circuit_response p;
                p.tenant = random_text(r);
                p.name = random_name(r);
                p.circuit = r.next_below(1000);
                p.revision = r.next_word();
                p.old_revision = r.next_word();
                p.reloads = r.next_below(100);
                resp.payload = std::move(p);
                break;
            }
            case 3: {
                list_circuits_response p;
                const std::uint64_t rows = r.next_below(4);
                for (std::uint64_t i = 0; i < rows; ++i) {
                    catalog_entry_payload e;
                    e.tenant = random_text(r);
                    e.name = random_name(r);
                    e.circuit = r.next_below(1000);
                    e.revision = r.next_word();
                    e.resident = r.next_below(2) == 0;
                    e.reloads = r.next_below(100);
                    p.entries.push_back(std::move(e));
                }
                resp.payload = std::move(p);
                break;
            }
            case 4: {
                test_length_response p;
                p.circuit = r.next_below(100);
                p.revision = r.next_word();
                p.cached = r.next_below(2) == 0;
                p.elapsed_ms = finite_double(r);
                p.length.feasible = true;
                p.length.test_length = finite_double(r);
                resp.payload = p;
                break;
            }
            default: {
                stats_response p;
                p.requests = r.next_word();
                p.cache_hits = r.next_word();
                pool_stats_payload ps;
                ps.circuit = r.next_below(8);
                ps.hits = static_cast<std::size_t>(r.next_word());
                p.pools.push_back(ps);
                // Half the trials carry the socket-server section, so
                // both the present and the absent encodings round-trip.
                if (r.next_below(2) == 0) {
                    p.server.present = true;
                    p.server.active = r.next_below(10000);
                    p.server.workers = 1 + r.next_below(64);
                    p.server.accepted = r.next_word();
                    p.server.refused = r.next_word();
                    p.server.queue_drops = r.next_word();
                    p.server.accept_backoffs = r.next_word();
                }
                // Likewise for the registry section, with and without
                // per-tenant quota rows.
                if (r.next_below(2) == 0) {
                    p.registry.present = true;
                    p.registry.circuits = r.next_below(2000);
                    p.registry.resident = r.next_below(64);
                    p.registry.max_views = r.next_below(64);
                    p.registry.view_evictions = r.next_word();
                    p.registry.view_rebuilds = r.next_word();
                    const std::uint64_t nt = r.next_below(3);
                    for (std::uint64_t i = 0; i < nt; ++i) {
                        tenant_stats_payload t;
                        t.tenant = random_text(r);
                        t.circuits = r.next_below(100);
                        t.cache_bytes = r.next_below(1 << 20);
                        t.max_circuits = r.next_below(100);
                        t.max_engines = r.next_below(16);
                        t.max_cache_bytes = r.next_below(1 << 20);
                        t.rejections = r.next_word();
                        p.registry.tenants.push_back(std::move(t));
                    }
                }
                resp.payload = std::move(p);
                break;
            }
        }
        std::string line = encode(resp);
        ASSERT_EQ(encode(decode_response(line)), line) << "trial " << trial;
        const std::size_t pos = r.next_below(line.size());
        line[pos] = static_cast<char>(r.next_below(256));
        try {
            (void)decode_response(line);
        } catch (const wire_error&) {
        } catch (const std::exception& e) {
            FAIL() << "response trial " << trial
                   << ": non-wire exception: " << e.what();
        }
    }
}

}  // namespace
}  // namespace wrpt::svc
