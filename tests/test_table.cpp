// Tests for util/table formatting.

#include "util/table.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace wrpt {
namespace {

TEST(text_table, renders_title_header_rows) {
    text_table t("Table X");
    t.set_header({"Circuit", "N"});
    t.add_row({"S1", "5.6e8"});
    t.add_row({"C7552", "4.9e11"});
    const std::string s = t.to_string();
    EXPECT_NE(s.find("Table X"), std::string::npos);
    EXPECT_NE(s.find("Circuit"), std::string::npos);
    EXPECT_NE(s.find("C7552"), std::string::npos);
    EXPECT_EQ(t.row_count(), 2u);
}

TEST(text_table, alignment_pads_columns) {
    text_table t;
    t.set_header({"a", "bb"});
    t.add_row({"cccc", "d"});
    const std::string s = t.to_string();
    // Header 'a' padded to the width of 'cccc'.
    EXPECT_NE(s.find("a     bb"), std::string::npos);
}

TEST(text_table, row_width_mismatch_throws) {
    text_table t;
    t.set_header({"one", "two"});
    EXPECT_THROW(t.add_row({"a"}), invalid_input);
}

TEST(format, sci) {
    EXPECT_EQ(format_sci(5.6e8, 2), "5.6e+08");
    EXPECT_EQ(format_sci(1.0, 2), "1.0e+00");
}

TEST(format, fixed) {
    EXPECT_EQ(format_fixed(99.74, 1), "99.7");
    EXPECT_EQ(format_fixed(80.0, 1), "80.0");
}

TEST(format, count_with_thousands) {
    EXPECT_EQ(format_count(0), "0");
    EXPECT_EQ(format_count(999), "999");
    EXPECT_EQ(format_count(12000), "12,000");
    EXPECT_EQ(format_count(1234567), "1,234,567");
}

}  // namespace
}  // namespace wrpt
