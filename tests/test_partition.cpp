// Tests for the partitioned optimization extension (paper section 5.3).

#include "opt/partition.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "gen/comparator.h"
#include "gen/pathological.h"
#include "io/weights_io.h"
#include "util/stats.h"

namespace wrpt {
namespace {

TEST(partition, pathological_circuit_needs_two_sessions) {
    // AND(X) wants all weights high, NOR(X) wants them low: a single tuple
    // cannot serve both (the paper's exact failure mode).
    const netlist nl = make_pathological(16);
    const auto faults = generate_full_faults(nl);
    cop_detect_estimator cop;

    partition_options opt;
    opt.opt.confidence = 0.999;
    const partitioned_result res =
        optimize_partitioned(nl, faults, cop, uniform_weights(nl), opt);

    ASSERT_TRUE(res.partitioned);
    ASSERT_GE(res.sessions.size(), 2u);
    // The partitioned schedule beats the single session by a wide margin.
    EXPECT_LT(res.total_length, res.single_session_length / 10.0);

    // Every fault is targeted by some session.
    std::vector<bool> covered(faults.size(), false);
    for (const auto& s : res.sessions)
        for (std::size_t i : s.fault_indices) covered[i] = true;
    for (std::size_t i = 0; i < faults.size(); ++i)
        EXPECT_TRUE(covered[i]) << "fault " << i << " not in any session";

    // The two hard sessions pull the weights in opposite directions.
    double min_mean = 1.0, max_mean = 0.0;
    for (const auto& s : res.sessions) {
        const double m = mean_of(s.weights);
        min_mean = std::min(min_mean, m);
        max_mean = std::max(max_mean, m);
    }
    EXPECT_GT(max_mean, 0.6);
    EXPECT_LT(min_mean, 0.3);
}

TEST(partition, benign_circuit_stays_single_session) {
    const netlist nl = make_cascaded_comparator(2, "cmp8p");
    const auto faults = generate_full_faults(nl);
    cop_detect_estimator cop;
    partition_options opt;
    // After optimization the comparator has no conflicting hard tail at
    // this threshold.
    opt.hard_length_ratio = 0.99;
    const partitioned_result res =
        optimize_partitioned(nl, faults, cop, uniform_weights(nl), opt);
    EXPECT_FALSE(res.partitioned);
    ASSERT_EQ(res.sessions.size(), 1u);
    EXPECT_DOUBLE_EQ(res.total_length, res.single_session_length);
    EXPECT_EQ(res.sessions[0].fault_indices.size(), faults.size());
}

TEST(partition, max_partitions_respected) {
    const netlist nl = make_pathological(12);
    const auto faults = generate_full_faults(nl);
    cop_detect_estimator cop;
    partition_options opt;
    opt.max_partitions = 2;
    const partitioned_result res =
        optimize_partitioned(nl, faults, cop, uniform_weights(nl), opt);
    EXPECT_LE(res.sessions.size(), 2u);
}

}  // namespace
}  // namespace wrpt
