// Tests for util/rng: determinism, distribution quality of biased words,
// quantization.

#include "util/rng.h"

#include <bit>
#include <cmath>

#include <gtest/gtest.h>

#include "util/error.h"

namespace wrpt {
namespace {

TEST(rng, deterministic_for_seed) {
    rng a(42), b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_word(), b.next_word());
}

TEST(rng, different_seeds_diverge) {
    rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next_word() == b.next_word()) ++same;
    EXPECT_LT(same, 2);
}

TEST(rng, next_double_in_unit_interval) {
    rng r(7);
    for (int i = 0; i < 1000; ++i) {
        const double x = r.next_double();
        EXPECT_GE(x, 0.0);
        EXPECT_LT(x, 1.0);
    }
}

TEST(rng, next_below_respects_bound) {
    rng r(9);
    for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
        for (int i = 0; i < 200; ++i) EXPECT_LT(r.next_below(bound), bound);
    }
}

TEST(rng, next_below_zero_bound_throws) {
    rng r(1);
    EXPECT_THROW(r.next_below(0), invalid_input);
}

TEST(rng, unbiased_word_mean) {
    rng r(11);
    std::uint64_t ones = 0;
    const int blocks = 2000;
    for (int i = 0; i < blocks; ++i)
        ones += static_cast<std::uint64_t>(std::popcount(r.next_word()));
    const double mean = static_cast<double>(ones) / (64.0 * blocks);
    EXPECT_NEAR(mean, 0.5, 0.01);
}

class biased_word_p : public ::testing::TestWithParam<double> {};

TEST_P(biased_word_p, empirical_frequency_matches) {
    const double p = GetParam();
    rng r(0xb1a5 + static_cast<std::uint64_t>(p * 1000));
    std::uint64_t ones = 0;
    const int blocks = 4000;
    for (int i = 0; i < blocks; ++i)
        ones += static_cast<std::uint64_t>(std::popcount(r.biased_word(p, 16)));
    const double mean = static_cast<double>(ones) / (64.0 * blocks);
    // Standard error ~ sqrt(p(1-p)/n) with n = 256000; 5 sigma margin.
    const double margin = 5.0 * std::sqrt(p * (1 - p) / (64.0 * blocks)) + 1e-4;
    EXPECT_NEAR(mean, p, margin) << "p=" << p;
}

INSTANTIATE_TEST_SUITE_P(weights, biased_word_p,
                         ::testing::Values(0.0, 0.05, 0.1, 0.25, 0.3, 0.5,
                                           0.625, 0.75, 0.9, 0.95, 1.0));

TEST(rng, biased_word_extremes_are_exact) {
    rng r(3);
    EXPECT_EQ(r.biased_word(0.0, 8), 0ULL);
    EXPECT_EQ(r.biased_word(1.0, 8), ~0ULL);
    // Below half a quantization step rounds to zero.
    EXPECT_EQ(r.biased_word(0.001, 8), 0ULL);
}

TEST(rng, biased_word_resolution_one_gives_half) {
    rng r(5);
    std::uint64_t ones = 0;
    for (int i = 0; i < 2000; ++i)
        ones += static_cast<std::uint64_t>(std::popcount(r.biased_word(0.5, 1)));
    EXPECT_NEAR(static_cast<double>(ones) / (64.0 * 2000), 0.5, 0.01);
}

TEST(rng, biased_word_invalid_resolution_throws) {
    rng r(1);
    EXPECT_THROW(r.biased_word(0.5, 0), invalid_input);
    EXPECT_THROW(r.biased_word(0.5, 33), invalid_input);
}

TEST(quantize_probability, snaps_to_grid) {
    EXPECT_DOUBLE_EQ(quantize_probability(0.3, 2), 0.25);
    EXPECT_DOUBLE_EQ(quantize_probability(0.3, 4), 0.3125);
    EXPECT_DOUBLE_EQ(quantize_probability(0.0, 4), 0.0);
    EXPECT_DOUBLE_EQ(quantize_probability(1.0, 4), 1.0);
    EXPECT_DOUBLE_EQ(quantize_probability(-0.5, 4), 0.0);
    EXPECT_DOUBLE_EQ(quantize_probability(1.5, 4), 1.0);
}

TEST(popcount_vector, counts_all_words) {
    std::vector<std::uint64_t> v{0ULL, ~0ULL, 1ULL, 0xf0ULL};
    EXPECT_EQ(popcount(v), 0u + 64u + 1u + 4u);
}

TEST(splitmix, nonzero_stream) {
    std::uint64_t s = 0;
    bool any_nonzero = false;
    for (int i = 0; i < 8; ++i)
        if (splitmix64_next(s) != 0) any_nonzero = true;
    EXPECT_TRUE(any_nonzero);
}

}  // namespace
}  // namespace wrpt
