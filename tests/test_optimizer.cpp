// Tests for the full OPTIMIZE procedure on real circuits.

#include "opt/optimizer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "gen/comparator.h"
#include "gen/pathological.h"
#include "opt/quantize.h"
#include "util/error.h"

namespace wrpt {
namespace {

TEST(optimizer, improves_comparator_test_length_dramatically) {
    // A 12-bit comparator has equality-chain faults at 2^-12; optimization
    // should cut the required length by an order of magnitude or more.
    const netlist nl = make_cascaded_comparator(3, "cmp12");
    const auto faults = generate_full_faults(nl);
    cop_detect_estimator cop;

    const optimize_result res =
        optimize_weights(nl, faults, cop, uniform_weights(nl));
    ASSERT_TRUE(res.feasible);
    EXPECT_EQ(res.zero_prob_faults, 0u);
    EXPECT_LT(res.final_test_length, res.initial_test_length / 10.0);
    // Weights live on the configured grid within the bounds.
    for (double w : res.weights) {
        EXPECT_GE(w, 0.05 - 1e-12);
        EXPECT_LE(w, 0.95 + 1e-12);
        const double snapped = std::round(w / 0.05) * 0.05;
        EXPECT_NEAR(w, snapped, 1e-9);
    }
}

TEST(optimizer, exact_estimator_on_small_circuit) {
    const netlist nl = make_cascaded_comparator(1, "cmp4");
    const auto faults = generate_full_faults(nl);
    exact_detect_estimator exact;
    optimize_options opt;
    opt.grid = 0.0;  // continuous weights
    const optimize_result res =
        optimize_weights(nl, faults, exact, uniform_weights(nl), opt);
    ASSERT_TRUE(res.feasible);
    // Best-iterate tracking guarantees the result never loses to the start.
    EXPECT_LE(res.final_test_length, res.initial_test_length);
}

TEST(optimizer, history_is_monotone_nonincreasing) {
    const netlist nl = make_cascaded_comparator(3, "cmp12");
    const auto faults = generate_full_faults(nl);
    cop_detect_estimator cop;
    optimize_options opt;
    opt.max_sweeps = 4;
    opt.alpha = -1.0;  // force all sweeps to run
    const optimize_result res =
        optimize_weights(nl, faults, cop, uniform_weights(nl), opt);
    ASSERT_TRUE(res.feasible);
    ASSERT_GE(res.history.size(), 2u);
    for (std::size_t i = 1; i < res.history.size(); ++i)
        EXPECT_LE(res.history[i].test_length,
                  res.history[i - 1].test_length * 1.05)
            << "sweep " << i;
    EXPECT_LE(res.history.front().test_length, res.initial_test_length);
}

TEST(optimizer, analysis_call_accounting) {
    const netlist nl = make_cascaded_comparator(1, "cmp4b");
    const auto faults = generate_full_faults(nl);
    cop_detect_estimator cop;
    optimize_options opt;
    opt.max_sweeps = 1;
    opt.alpha = -1.0;
    const optimize_result res =
        optimize_weights(nl, faults, cop, uniform_weights(nl), opt);
    // 1 initial + (2 per input) * inputs + 1 per sweep; the saddle escape
    // may add up to 5 probe analyses.
    EXPECT_GE(res.analysis_calls, 1 + 2 * nl.input_count() + 1);
    EXPECT_LE(res.analysis_calls, 1 + 2 * nl.input_count() + 1 + 5);
}

TEST(optimizer, respects_custom_bounds) {
    const netlist nl = make_cascaded_comparator(1, "cmp4c");
    const auto faults = generate_full_faults(nl);
    cop_detect_estimator cop;
    optimize_options opt;
    opt.weight_min = 0.2;
    opt.weight_max = 0.8;
    opt.grid = 0.0;
    const optimize_result res =
        optimize_weights(nl, faults, cop, uniform_weights(nl), opt);
    for (double w : res.weights) {
        EXPECT_GE(w, 0.2 - 1e-12);
        EXPECT_LE(w, 0.8 + 1e-12);
    }
}

TEST(optimizer, deterministic) {
    const netlist nl = make_cascaded_comparator(2, "cmp8d");
    const auto faults = generate_full_faults(nl);
    cop_detect_estimator cop;
    const auto a = optimize_weights(nl, faults, cop, uniform_weights(nl));
    const auto b = optimize_weights(nl, faults, cop, uniform_weights(nl));
    EXPECT_EQ(a.weights, b.weights);
    EXPECT_DOUBLE_EQ(a.final_test_length, b.final_test_length);
}

TEST(optimizer, rejects_bad_options) {
    const netlist nl = make_cascaded_comparator(1, "cmp4e");
    const auto faults = generate_full_faults(nl);
    cop_detect_estimator cop;
    optimize_options opt;
    opt.weight_min = 0.0;
    EXPECT_THROW(optimize_weights(nl, faults, cop, uniform_weights(nl), opt),
                 invalid_input);
    weight_vector wrong_size(nl.input_count() + 1, 0.5);
    EXPECT_THROW(optimize_weights(nl, faults, cop, wrong_size, {}),
                 invalid_input);
}

TEST(required_test_length, conventional_vs_optimized_scale) {
    // Table 1/3 mechanics on the 12-bit comparator: equality faults at
    // 2^-12 dominate the conventional length.
    const netlist nl = make_cascaded_comparator(3, "cmp12r");
    const auto faults = generate_full_faults(nl);
    cop_detect_estimator cop;
    const auto conventional =
        required_test_length(nl, faults, cop, uniform_weights(nl));
    ASSERT_TRUE(conventional.feasible);
    EXPECT_GT(conventional.test_length, 1e4);
    EXPECT_LT(conventional.hardest_probability, 1e-3);

    const auto opt = optimize_weights(nl, faults, cop, uniform_weights(nl));
    const auto optimized =
        required_test_length(nl, faults, cop, opt.weights);
    EXPECT_LT(optimized.test_length, conventional.test_length / 5.0);
}

TEST(quantize, grid_and_lfsr) {
    const weight_vector w{0.07, 0.52, 0.93, 0.5};
    const weight_vector g = quantize_grid(w, 0.05, 0.05, 0.95);
    EXPECT_NEAR(g[0], 0.05, 1e-12);
    EXPECT_NEAR(g[1], 0.5, 1e-12);
    EXPECT_NEAR(g[2], 0.95, 1e-12);

    const weight_vector l = quantize_lfsr(w, 4);
    // Alphabet: 1/16, 1/8, 1/4, 1/2, 3/4, 7/8, 15/16.
    EXPECT_NEAR(l[0], 1.0 / 16.0, 1e-12);
    EXPECT_NEAR(l[1], 0.5, 1e-12);
    EXPECT_NEAR(l[2], 15.0 / 16.0, 1e-12);
    EXPECT_NEAR(l[3], 0.5, 1e-12);

    const auto alphabet = lfsr_weight_alphabet(3);
    ASSERT_EQ(alphabet.size(), 5u);  // 1/8 1/4 1/2 3/4 7/8
    for (std::size_t i = 1; i < alphabet.size(); ++i)
        EXPECT_LT(alphabet[i - 1], alphabet[i]);

    EXPECT_THROW(quantize_grid(w, 0.0, 0.0, 1.0), invalid_input);
    EXPECT_THROW(lfsr_weight_alphabet(0), invalid_input);
}

TEST(quantize, lfsr_weights_cost_bounded_test_length_increase) {
    // Snapping the optimized weights to the LFSR alphabet must not blow up
    // the test length by more than a small factor on the comparator.
    const netlist nl = make_cascaded_comparator(2, "cmp8q");
    const auto faults = generate_full_faults(nl);
    cop_detect_estimator cop;
    const auto res = optimize_weights(nl, faults, cop, uniform_weights(nl));
    const weight_vector lw = quantize_lfsr(res.weights, 5);
    const auto quantized = required_test_length(nl, faults, cop, lw);
    ASSERT_TRUE(quantized.feasible);
    EXPECT_LT(quantized.test_length, 20.0 * res.final_test_length);
    const auto conventional =
        required_test_length(nl, faults, cop, uniform_weights(nl));
    EXPECT_LT(quantized.test_length, conventional.test_length);
}

}  // namespace
}  // namespace wrpt
