// Tests for the single-variable MINIMIZE step (paper section 3.2,
// formula 15): Newton result vs dense scan, convexity, boundaries.

#include "opt/minimize.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/rng.h"

namespace wrpt {
namespace {

double j_at(const std::vector<affine_fault>& faults, double n, double y) {
    double j = 0.0;
    for (const auto& f : faults) j += std::exp(-n * (f.p0 + y * (f.p1 - f.p0)));
    return j;
}

class minimize_random : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(minimize_random, newton_matches_dense_scan) {
    rng r(GetParam());
    std::vector<affine_fault> faults;
    const std::size_t count = 1 + r.next_below(12);
    for (std::size_t i = 0; i < count; ++i) {
        affine_fault f;
        f.p0 = 0.002 * r.next_double();
        f.p1 = 0.002 * r.next_double();
        faults.push_back(f);
    }
    const double n = 500.0 + 5000.0 * r.next_double();
    const auto res = minimize_single_input(faults, n, 0.05, 0.95);

    // Dense scan reference.
    double best_y = 0.05, best_j = j_at(faults, n, 0.05);
    for (double y = 0.05; y <= 0.95 + 1e-12; y += 0.0005) {
        const double j = j_at(faults, n, y);
        if (j < best_j) {
            best_j = j;
            best_y = y;
        }
    }
    EXPECT_NEAR(res.y, best_y, 2e-3) << "seed " << GetParam();
    EXPECT_LE(j_at(faults, n, res.y), best_j * (1.0 + 1e-6));
}

TEST_P(minimize_random, objective_convex_along_y) {
    rng r(GetParam() + 100);
    std::vector<affine_fault> faults;
    for (int i = 0; i < 8; ++i)
        faults.push_back({0.01 * r.next_double(), 0.01 * r.next_double()});
    const double n = 1000.0;
    // Numeric second difference must be non-negative (Lemma 3).
    for (double y = 0.1; y <= 0.9; y += 0.05) {
        const double h = 1e-4;
        const double second =
            j_at(faults, n, y - h) - 2.0 * j_at(faults, n, y) +
            j_at(faults, n, y + h);
        EXPECT_GE(second, -1e-12) << "y=" << y;
    }
}

INSTANTIATE_TEST_SUITE_P(seeds, minimize_random,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(minimize, boundary_minimum_low) {
    // All faults prefer y = 0 (p decreases with y? no: p1 < p0 means
    // raising y hurts, so minimum of J is at low y only if p grows with y).
    // Here detection improves as y falls: p(y) = 0.01 - 0.005 y.
    std::vector<affine_fault> faults{{0.01, 0.005}};
    const auto res = minimize_single_input(faults, 2000.0, 0.05, 0.95);
    EXPECT_DOUBLE_EQ(res.y, 0.05);
}

TEST(minimize, boundary_minimum_high) {
    std::vector<affine_fault> faults{{0.005, 0.01}};
    const auto res = minimize_single_input(faults, 2000.0, 0.05, 0.95);
    EXPECT_DOUBLE_EQ(res.y, 0.95);
}

TEST(minimize, interior_balance_of_two_conflicting_faults) {
    // Symmetric conflict: fault A wants y high, fault B wants y low, same
    // magnitudes; the unique minimum is the midpoint.
    std::vector<affine_fault> faults{{0.0, 0.01}, {0.01, 0.0}};
    const auto res = minimize_single_input(faults, 3000.0, 0.05, 0.95);
    EXPECT_NEAR(res.y, 0.5, 1e-6);
}

TEST(minimize, no_dependence_returns_midpoint) {
    std::vector<affine_fault> faults{{0.01, 0.01}, {0.2, 0.2}};
    const auto res = minimize_single_input(faults, 100.0, 0.1, 0.9);
    EXPECT_DOUBLE_EQ(res.y, 0.5);
}

TEST(minimize, empty_fault_set_returns_midpoint) {
    const auto res = minimize_single_input({}, 100.0, 0.0, 1.0);
    EXPECT_DOUBLE_EQ(res.y, 0.5);
}

TEST(minimize, survives_underflow_scale) {
    // N so large that every exp underflows: the scaled derivatives must
    // still find the right direction.
    std::vector<affine_fault> faults{{1e-6, 2e-5}, {3e-5, 1e-6}};
    const auto res = minimize_single_input(faults, 1e9, 0.05, 0.95);
    EXPECT_GT(res.y, 0.05);
    EXPECT_LT(res.y, 0.95);
    EXPECT_TRUE(std::isfinite(res.y));
}

TEST(minimize, rejects_bad_interval) {
    std::vector<affine_fault> faults{{0.1, 0.2}};
    EXPECT_THROW(minimize_single_input(faults, 10.0, 0.9, 0.1), invalid_input);
    EXPECT_THROW(minimize_single_input(faults, 10.0, -0.1, 0.5), invalid_input);
    EXPECT_THROW(minimize_single_input(faults, -5.0, 0.1, 0.9), invalid_input);
}

}  // namespace
}  // namespace wrpt
