// Tests for the stuck-at fault model and equivalence collapsing.

#include "fault/fault.h"

#include <set>

#include <gtest/gtest.h>

#include "gen/comparator.h"
#include "gen/random_circuit.h"
#include "sim/logic_sim.h"

namespace wrpt {
namespace {

netlist chain_example() {
    // y = nand(and(a,b), not(c)), with a fanout on a.
    netlist nl("chain");
    const node_id a = nl.add_input("a");
    const node_id b = nl.add_input("b");
    const node_id c = nl.add_input("c");
    const node_id g1 = nl.add_binary(gate_kind::and_, a, b, "g1");
    const node_id g2 = nl.add_unary(gate_kind::not_, c, "g2");
    const node_id g3 = nl.add_binary(gate_kind::nand_, g1, g2, "g3");
    const node_id g4 = nl.add_binary(gate_kind::or_, a, g3, "g4");
    nl.mark_output(g4, "y");
    return nl;
}

TEST(fault_list, full_list_counts_match_lines) {
    const netlist nl = chain_example();
    const auto faults = generate_full_faults(nl);
    // Lines: 7 stems + 2 branches (a has fanout 2: into g1 and g4).
    EXPECT_EQ(nl.stats().line_count, 9u);
    EXPECT_EQ(faults.size(), 2 * 9u);
}

TEST(fault_list, dead_nodes_and_constants_skipped) {
    netlist nl("d");
    const node_id a = nl.add_input("a");
    const node_id k = nl.add_const(false, "k");
    const node_id g = nl.add_binary(gate_kind::or_, a, k, "g");
    const node_id dead = nl.add_unary(gate_kind::not_, a, "dead");
    (void)dead;
    nl.mark_output(g, "y");
    const auto faults = generate_full_faults(nl);
    for (const auto& f : faults) {
        EXPECT_NE(f.where, dead);
        if (f.where == k && f.is_stem()) {
            EXPECT_EQ(f.value, stuck_at::one);  // sa0 on const0 skipped
        }
    }
    // a has fanout 2 (g and dead)? dead is skipped as a gate but still
    // counts as fanout; branch faults on the dead gate's pins are not
    // generated because the gate itself is dead... but pins of live gates
    // are. The invariant that matters: every fault site is live.
    for (const auto& f : faults)
        EXPECT_TRUE(nl.fanout_count(f.where) > 0 || nl.is_output(f.where));
}

TEST(fault_strings, human_readable) {
    const netlist nl = chain_example();
    const fault stem{nl.find("g1"), -1, stuck_at::zero};
    EXPECT_EQ(to_string(nl, stem), "g1 sa0");
    const fault branch{nl.find("g4"), 0, stuck_at::one};
    EXPECT_EQ(to_string(nl, branch), "g4.in0 sa1");
}

TEST(fault_site, driver_resolution) {
    const netlist nl = chain_example();
    const fault stem{nl.find("g3"), -1, stuck_at::zero};
    EXPECT_EQ(fault_site_driver(nl, stem), nl.find("g3"));
    const fault branch{nl.find("g4"), 0, stuck_at::one};
    EXPECT_EQ(fault_site_driver(nl, branch), nl.find("a"));
}

TEST(collapse, classes_partition_the_full_list) {
    const netlist nl = chain_example();
    const collapsed_faults cf = collapse_faults(nl);
    EXPECT_EQ(cf.class_of.size(), cf.all.size());
    EXPECT_LE(cf.class_count(), cf.all.size());
    EXPECT_GT(cf.class_count(), 0u);
    // Representative of each class is a member with that class id.
    for (std::size_t c = 0; c < cf.class_count(); ++c) {
        const std::uint32_t rep = cf.representative[c];
        ASSERT_LT(rep, cf.all.size());
        EXPECT_EQ(cf.class_of[rep], c);
    }
    // Collapsing must reduce an and/nand chain.
    EXPECT_LT(cf.class_count(), cf.all.size());
}

/// Exhaustively compare detection behaviour of two faults: equivalent
/// faults must be detected by exactly the same input patterns.
bool same_test_set(const netlist& nl, const fault& f, const fault& g) {
    const std::size_t ins = nl.input_count();
    for (std::uint64_t v = 0; v < (1ULL << ins); ++v) {
        std::vector<bool> in(ins);
        for (std::size_t i = 0; i < ins; ++i) in[i] = ((v >> i) & 1ULL) != 0;
        const auto good = evaluate(nl, in);
        const bool df = evaluate_with_fault(nl, in, f) != good;
        const bool dg = evaluate_with_fault(nl, in, g) != good;
        if (df != dg) return false;
    }
    return true;
}

TEST(collapse, equivalent_faults_have_identical_test_sets) {
    const netlist nl = chain_example();
    const collapsed_faults cf = collapse_faults(nl);
    for (std::size_t i = 0; i < cf.all.size(); ++i) {
        const std::size_t rep = cf.representative[cf.class_of[i]];
        if (rep == i) continue;
        EXPECT_TRUE(same_test_set(nl, cf.all[i], cf.all[rep]))
            << to_string(nl, cf.all[i]) << " vs " << to_string(nl, cf.all[rep]);
    }
}

class collapse_seeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(collapse_seeds, equivalence_classes_verified_exhaustively) {
    random_circuit_spec spec;
    spec.inputs = 6;
    spec.gates = 24;
    spec.seed = GetParam();
    const netlist nl = make_random_circuit(spec);
    const collapsed_faults cf = collapse_faults(nl);
    for (std::size_t i = 0; i < cf.all.size(); ++i) {
        const std::size_t rep = cf.representative[cf.class_of[i]];
        if (rep == i) continue;
        ASSERT_TRUE(same_test_set(nl, cf.all[i], cf.all[rep]))
            << "seed " << spec.seed << ": " << to_string(nl, cf.all[i])
            << " vs " << to_string(nl, cf.all[rep]);
    }
}

INSTANTIATE_TEST_SUITE_P(seeds, collapse_seeds, ::testing::Values(3, 7, 11, 19));

TEST(collapse, comparator_reduction_is_substantial) {
    const netlist nl = make_cascaded_comparator(2);
    const collapsed_faults cf = collapse_faults(nl);
    // Equivalence collapsing typically removes 40-60% of stuck-at faults in
    // and/or-dominated logic.
    EXPECT_LT(cf.class_count(), cf.all.size() * 3 / 4);
}

}  // namespace
}  // namespace wrpt
