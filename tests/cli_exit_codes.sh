#!/bin/sh
# Exit-code contract of `wrpt_cli serve` failure paths, driven from ctest:
# open/bind failures must print the errno string to stderr and exit with a
# distinct code (4 = stdin/pipe input open failure, 5 = socket bind
# failure) — never silently, never with the generic 1.
#
#   usage: cli_exit_codes.sh <path-to-wrpt_cli> <pipe|socket|badspec>
set -u
cli=$1
mode=$2

case $mode in
  pipe)
    out=$("$cli" serve /nonexistent-wrpt-dir/in.pipe 2>&1)
    code=$?
    want=4
    ;;
  socket)
    out=$("$cli" serve --listen unix:/nonexistent-wrpt-dir/wrpt.sock 2>&1)
    code=$?
    want=5
    ;;
  badspec)
    # An argument typo is a usage error (64), not a bind failure (5).
    out=$("$cli" serve --listen junk 2>&1)
    code=$?
    want=64
    ;;
  *)
    echo "unknown mode '$mode'" >&2
    exit 2
    ;;
esac

echo "$out"
if [ "$code" -ne "$want" ]; then
  echo "FAIL: expected exit $want for $mode mode, got $code" >&2
  exit 1
fi
if [ "$mode" != badspec ]; then
  case $out in
    *"No such file or directory"*) ;;
    *)
      echo "FAIL: stderr is missing the errno string" >&2
      exit 1
      ;;
  esac
fi
exit 0
