// Tests for the BIST substrate: LFSR maximal periods, weighted pattern
// generation, MISR signatures, full self-test sessions.

#include <bit>
#include <cmath>

#include <gtest/gtest.h>

#include "bist/lfsr.h"
#include "bist/misr.h"
#include "bist/grading.h"
#include "bist/session.h"
#include "bist/weightgen.h"
#include "gen/comparator.h"
#include "gen/interrupt.h"
#include "io/weights_io.h"
#include "fault/fault.h"
#include "util/error.h"

namespace wrpt {
namespace {

class lfsr_degrees : public ::testing::TestWithParam<unsigned> {};

TEST_P(lfsr_degrees, maximal_period) {
    const unsigned d = GetParam();
    lfsr g = lfsr::max_length(d, 1);
    EXPECT_EQ(g.measure_period(), (1ULL << d) - 1) << "degree " << d;
}

INSTANTIATE_TEST_SUITE_P(degrees, lfsr_degrees,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12,
                                           13, 14, 15, 16, 17, 18, 19, 20));

TEST(lfsr, output_stream_is_balanced) {
    lfsr g = lfsr::max_length(16, 0xace1);
    std::uint64_t ones = 0;
    const int n = 1 << 16;
    for (int i = 0; i < n; ++i)
        if (g.step()) ++ones;
    // An m-sequence of period 2^16-1 has 2^15 ones per period.
    EXPECT_NEAR(static_cast<double>(ones) / n, 0.5, 0.01);
}

TEST(lfsr, step_word_collects_bits_in_order) {
    lfsr a = lfsr::max_length(8, 0x5a);
    lfsr b = lfsr::max_length(8, 0x5a);
    const std::uint64_t w = a.step_word(16);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(((w >> i) & 1ULL) != 0, b.step()) << "bit " << i;
}

TEST(lfsr, invalid_configuration_rejected) {
    EXPECT_THROW(lfsr::max_length(1), invalid_input);
    EXPECT_THROW(lfsr::max_length(33), invalid_input);
    EXPECT_THROW(lfsr(8, lfsr::primitive_taps(8), 0), invalid_input);  // zero
    EXPECT_THROW(lfsr(8, 0x01, 1), invalid_input);  // no tap on last stage
}

TEST(weight_taps, realize_alphabet) {
    EXPECT_DOUBLE_EQ((weight_tap{1, false}).realized(), 0.5);
    EXPECT_DOUBLE_EQ((weight_tap{3, false}).realized(), 0.125);
    EXPECT_DOUBLE_EQ((weight_tap{3, true}).realized(), 0.875);
}

TEST(weight_taps, chosen_taps_minimize_error) {
    const weight_vector w{0.5, 0.1, 0.9, 0.05, 0.3};
    const auto taps = taps_for_weights(w, 5);
    ASSERT_EQ(taps.size(), w.size());
    for (std::size_t i = 0; i < w.size(); ++i) {
        // No alternative tap with up to 5 stages does better.
        const double err = std::abs(taps[i].realized() - w[i]);
        for (unsigned m = 1; m <= 5; ++m)
            for (bool o : {false, true})
                EXPECT_LE(err, std::abs((weight_tap{m, o}).realized() - w[i]) +
                                   1e-12);
    }
}

TEST(weighted_lfsr_source, empirical_frequencies_match_realized) {
    const weight_vector w{0.5, 0.125, 0.875, 0.25};
    lfsr gen = lfsr::max_length(24, 0xbeef);
    lfsr_pattern_source src(gen, taps_for_weights(w, 4));
    const weight_vector realized = src.realized_weights();
    std::vector<std::uint64_t> ones(w.size(), 0);
    std::vector<std::uint64_t> words;
    const int blocks = 1500;
    for (int b = 0; b < blocks; ++b) {
        src.next_block(words);
        for (std::size_t i = 0; i < w.size(); ++i)
            ones[i] += static_cast<std::uint64_t>(std::popcount(words[i]));
    }
    for (std::size_t i = 0; i < w.size(); ++i) {
        const double freq = static_cast<double>(ones[i]) / (64.0 * blocks);
        EXPECT_NEAR(freq, realized[i], 0.015) << "input " << i;
    }
}

TEST(misr_sig, deterministic_and_sensitive) {
    misr a(16), b(16);
    for (int i = 0; i < 100; ++i) {
        a.feed(static_cast<std::uint64_t>(i) * 2654435761u);
        b.feed(static_cast<std::uint64_t>(i) * 2654435761u);
    }
    EXPECT_EQ(a.signature(), b.signature());
    // A single flipped response bit changes the signature.
    misr c(16);
    for (int i = 0; i < 100; ++i) {
        std::uint64_t r = static_cast<std::uint64_t>(i) * 2654435761u;
        if (i == 50) r ^= 1;
        c.feed(r);
    }
    EXPECT_NE(a.signature(), c.signature());
    EXPECT_NEAR(a.aliasing_probability(), std::ldexp(1.0, -16), 1e-18);
}

TEST(misr_sig, feed_bits_folds_wide_responses) {
    misr m(4);
    std::vector<bool> resp(11, false);
    resp[0] = resp[4] = resp[8] = true;  // all fold onto cell 0: xor = 1
    m.feed_bits(resp);
    misr n(4);
    n.feed(1);
    EXPECT_EQ(m.signature(), n.signature());
}

TEST(bist_session, golden_signature_reproducible) {
    const netlist nl = make_interrupt_controller();
    bist_session_options opt;
    opt.patterns = 512;
    const weight_vector w = uniform_weights(nl);
    EXPECT_EQ(compute_golden_signature(nl, w, opt),
              compute_golden_signature(nl, w, opt));
}

TEST(bist_session, covers_most_faults_of_easy_circuit) {
    const netlist nl = make_interrupt_controller();
    const auto faults = generate_full_faults(nl);
    bist_session_options opt;
    opt.patterns = 2048;
    const auto res =
        run_bist_session(nl, faults, uniform_weights(nl), opt);
    EXPECT_EQ(res.patterns_applied, 2048u);
    EXPECT_EQ(res.faults_total, faults.size());
    EXPECT_GT(res.coverage_percent(), 90.0);
    EXPECT_LT(res.aliasing_probability, 1e-9);
}

TEST(bist_session, weighted_session_beats_uniform_on_comparator) {
    // Weights pushed toward matching operands (0.875 on both halves raises
    // per-bit equality probability) detect equality-chain faults that the
    // uniform session misses at this pattern budget.
    const netlist nl = make_cascaded_comparator(4, "cmp16");
    const auto faults = generate_full_faults(nl);
    bist_session_options opt;
    opt.patterns = 1024;
    const auto uniform =
        run_bist_session(nl, faults, uniform_weights(nl, 0.5), opt);
    const auto weighted =
        run_bist_session(nl, faults, uniform_weights(nl, 0.875), opt);
    EXPECT_GT(weighted.faults_detected, uniform.faults_detected);
}

TEST(threshold_source, arbitrary_weights_at_fine_resolution) {
    const weight_vector w{0.05, 0.37, 0.62, 0.95};
    const auto taps = thresholds_for_weights(w, 10);
    for (std::size_t i = 0; i < w.size(); ++i)
        EXPECT_NEAR(taps[i].realized(), w[i], 1.0 / 1024.0);

    lfsr gen = lfsr::max_length(24, 0x7e57);
    threshold_pattern_source src(gen, taps);
    std::vector<std::uint64_t> ones(w.size(), 0);
    std::vector<std::uint64_t> words;
    const int blocks = 1200;
    for (int b = 0; b < blocks; ++b) {
        src.next_block(words);
        for (std::size_t i = 0; i < w.size(); ++i)
            ones[i] += static_cast<std::uint64_t>(std::popcount(words[i]));
    }
    for (std::size_t i = 0; i < w.size(); ++i) {
        const double freq = static_cast<double>(ones[i]) / (64.0 * blocks);
        EXPECT_NEAR(freq, w[i], 0.02) << "input " << i;
    }
}

TEST(threshold_source, rejects_bad_configuration) {
    EXPECT_THROW(thresholds_for_weights({0.5}, 0), invalid_input);
    lfsr gen = lfsr::max_length(16, 1);
    std::vector<threshold_tap> bad{{8, 1u << 9}};
    EXPECT_THROW(threshold_pattern_source(gen, bad), invalid_input);
}

TEST(signature_grading, aliasing_is_rare_and_bounded) {
    const netlist nl = make_interrupt_controller();
    const auto faults = generate_full_faults(nl);
    signature_grading_options opt;
    opt.patterns = 512;
    opt.misr_degree = 16;
    const auto res =
        grade_by_signature(nl, faults, uniform_weights(nl), opt);
    EXPECT_EQ(res.faults_total, faults.size());
    EXPECT_GT(res.detected_by_outputs, faults.size() * 3 / 4);
    // Signature detection loses at most a few faults to aliasing; the
    // theoretical rate is ~2^-16.
    EXPECT_GE(res.detected_by_outputs, res.detected_by_signature);
    EXPECT_LE(res.aliased, 2u);
    EXPECT_LT(res.empirical_aliasing_rate(), 0.01);
}

TEST(signature_grading, consistent_with_output_detection_counts) {
    const netlist nl = make_cascaded_comparator(2, "cmp8g");
    const auto faults = generate_full_faults(nl);
    signature_grading_options opt;
    opt.patterns = 256;
    opt.misr_degree = 24;
    const auto res =
        grade_by_signature(nl, faults, uniform_weights(nl), opt);
    EXPECT_EQ(res.detected_by_signature + res.aliased,
              res.detected_by_outputs);
}

}  // namespace
}  // namespace wrpt
