#!/bin/sh
# Test driver for wrpt_lint. Registered as ctests by CMakeLists.txt.
#
#   lint_test.sh <wrpt_lint> rule <name>   golden-diff <name>/bad, clean <name>/good
#   lint_test.sh <wrpt_lint> repo          whole-tree scan must be clean (exit 0)
#   lint_test.sh <wrpt_lint> usage         exit-code contract: 2 on misuse
#
# Exit codes under test: 0 clean, 1 violations found, 2 usage/IO error.
set -u

BIN=${1:?usage: lint_test.sh <wrpt_lint> <mode> [rule]}
MODE=${2:?usage: lint_test.sh <wrpt_lint> <mode> [rule]}
HERE=$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)

fail() {
    echo "FAIL: $*" >&2
    exit 1
}

case "$MODE" in
rule)
    RULE=${3:?usage: lint_test.sh <wrpt_lint> rule <name>}
    GOLDEN="$HERE/golden/$RULE.txt"
    [ -f "$GOLDEN" ] || fail "missing golden $GOLDEN"
    cd "$HERE/fixtures" || fail "missing fixtures dir"

    # bad/ tree: exit 1 and diagnostics byte-identical to the golden.
    OUT=$("$BIN" "$RULE/bad")
    STATUS=$?
    [ "$STATUS" -eq 1 ] || fail "$RULE/bad: expected exit 1, got $STATUS"
    echo "$OUT" | diff -u "$GOLDEN" - ||
        fail "$RULE/bad: diagnostics differ from golden/$RULE.txt"

    # good/ tree: exit 0 and silent.
    OUT=$("$BIN" "$RULE/good")
    STATUS=$?
    [ "$STATUS" -eq 0 ] || fail "$RULE/good: expected exit 0, got $STATUS"
    [ -z "$OUT" ] || fail "$RULE/good: expected no output, got: $OUT"
    ;;

repo)
    ROOT=$(CDPATH= cd -- "$HERE/../.." && pwd)
    cd "$ROOT" || fail "cannot cd to repo root"
    OUT=$("$BIN" src tools tests)
    STATUS=$?
    [ "$STATUS" -eq 0 ] || fail "repo scan: expected exit 0, got $STATUS
$OUT"
    ;;

usage)
    # No paths at all.
    "$BIN" >/dev/null 2>&1
    [ $? -eq 2 ] || fail "no args: expected exit 2"
    # Unknown option.
    "$BIN" --no-such-flag >/dev/null 2>&1
    [ $? -eq 2 ] || fail "unknown option: expected exit 2"
    # Nonexistent path.
    "$BIN" /nonexistent/wrpt/lint/path >/dev/null 2>&1
    [ $? -eq 2 ] || fail "missing path: expected exit 2"
    # --list-rules succeeds and names every rule.
    OUT=$("$BIN" --list-rules) || fail "--list-rules: expected exit 0"
    for RULE in dense-map determinism blocking-io raw-mutex; do
        echo "$OUT" | grep -q "$RULE" || fail "--list-rules missing $RULE"
    done
    ;;

*)
    fail "unknown mode '$MODE'"
    ;;
esac

echo "PASS: $MODE ${3:-}"
exit 0
