// Clean fixture: declarations, member calls, and qualified member
// definitions named send/recv/connect are all fine — only raw libc
// calls are the rule's business.
struct request {};

class client {
public:
    void send(const request& q);
    unsigned long recv(char* buf, unsigned long n);
    void connect(const char* where);
};

void client::send(const request&) {}
unsigned long client::recv(char*, unsigned long) { return 0; }
void client::connect(const char*) {}

void roundtrip(client& c, const request& q) {
    c.send(q);
    char buf[16];
    c.recv(buf, sizeof buf);
}

void redial(client* c) { c->connect("localhost"); }

const char* doc = "raw send() calls belong in svc/socket.cpp";
