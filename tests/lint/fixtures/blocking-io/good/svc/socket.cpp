// Clean fixture: svc/socket.cpp is the one file allowed to speak libc.
#include <sys/socket.h>

long push(int fd, const void* p, unsigned long n) {
    return ::send(fd, p, n, 0);
}

long pull(int fd, void* p, unsigned long n) { return ::recv(fd, p, n, 0); }
