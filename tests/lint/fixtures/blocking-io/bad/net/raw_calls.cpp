// Violation fixture: raw blocking socket calls outside svc/socket.cpp.
#include <sys/socket.h>

long push(int fd, const void* p, unsigned long n) {
    return send(fd, p, n, 0);
}

long pull(int fd, void* p, unsigned long n) { return ::recv(fd, p, n, 0); }

int dial(int fd, const sockaddr* a, unsigned int len) {
    if (connect(fd, a, len) != 0) return -1;
    return 0;
}
