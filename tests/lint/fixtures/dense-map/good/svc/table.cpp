// Clean fixture: dense_map in code; std::map only in comments, strings,
// and behind an allow directive.
//
// A comment mentioning std::unordered_map must not fire.

#include "util/dense_map.h"

namespace util {  // stand-in so the fixture parses conceptually
}

util::dense_map<int> lookup_table;

const char* msg = "prefer dense_map over std::unordered_map";

// String keys have no dense integer domain, so the escape hatch applies:
// wrpt-lint: allow(dense-map) string-keyed, never hot
std::unordered_map<const char*, int> by_name;

std::map<int, int>  // wrpt-lint: allow(dense-map) needs ordered walk
    ordered;
