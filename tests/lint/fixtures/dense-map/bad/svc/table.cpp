// Violation fixture: ordered/unordered std maps in a hot dir.
#include <map>
#include <unordered_map>

std::unordered_map<int, int> lookup_table;
std::map<unsigned long, double> ordered_table;

int probe(int k) { return lookup_table[k]; }
