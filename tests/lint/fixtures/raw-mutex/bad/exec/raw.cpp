// Violation fixture: raw synchronization primitives outside util/sync.h.
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

std::mutex m;
std::shared_mutex sm;
std::condition_variable cv;

int locked_read(int* p) {
    std::scoped_lock lock(m);
    std::shared_lock shared(sm);
    return *p;
}
