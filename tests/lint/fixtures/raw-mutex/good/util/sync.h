// Clean fixture: util/sync.h itself is the one place raw primitives and
// their headers may appear.
#pragma once

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

namespace fixture {

class mutex {
    std::mutex m_;
};

}  // namespace fixture
