// Clean fixture: the annotated wrappers, with raw names confined to
// comments, strings, and raw strings.
#include "util/sync.h"

// std::mutex in a comment is prose, not a violation.
const char* doc = "std::mutex and std::scoped_lock are banned";
const char* raw = R"(even inside a raw string: std::condition_variable,
#include <mutex>
)";

wrpt::mutex m;

int locked_read(int* p) {
    wrpt::lock_guard lock(m);
    return *p;
}
