// Violation fixture: entropy, wall clock, and unordered iteration in a
// deterministic kernel dir.
#include <chrono>
#include <cstdlib>
#include <random>
#include <unordered_map>

std::unordered_map<int, int> counts;

unsigned long roll() {
    std::random_device rd;
    srand(rd());
    auto now = std::chrono::system_clock::now();
    unsigned long s = (unsigned long)rand();
    for (auto& kv : counts) s += kv.second;
    for (auto it = counts.begin(); it != counts.end(); ++it) s += it->first;
    return s + (unsigned long)now.time_since_epoch().count();
}
