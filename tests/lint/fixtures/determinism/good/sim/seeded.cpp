// Clean fixture: seeded generator, steady accounting, lookup-only
// unordered map (contains/at/[] never iterate), and rand() only in
// comments and strings.
#include <cstdint>
#include <unordered_map>

std::unordered_map<std::uint64_t, std::uint32_t> ref_by_fault;

const char* note = "never calls rand() or srand()";

// A member-call spelling is some object's own generator, not libc rand:
struct generator {
    std::uint64_t state = 0x9e3779b97f4a7c15ull;
    std::uint64_t rand() { return state *= 6364136223846793005ull; }
};

std::uint64_t draw(generator& g) {
    return g.rand();  // seeded, deterministic
}

std::uint32_t probe(std::uint64_t k) {
    const auto it = ref_by_fault.find(k);
    return it == ref_by_fault.end() ? 0 : it->second;
}
