// Tests for the probability-analysis engines: COP signal probabilities,
// cutting-algorithm bounds, observabilities, and the four detection
// probability estimators against ground truth.

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "fault/fault.h"
#include "gen/random_circuit.h"
#include "gen/wordlib.h"
#include "prob/cutting.h"
#include "prob/detect.h"
#include "prob/observability.h"
#include "prob/redundancy.h"
#include "prob/signal_prob.h"
#include "prob/stafan.h"
#include "sim/logic_sim.h"
#include "util/error.h"
#include "util/rng.h"

namespace wrpt {
namespace {

/// Tree circuit (no reconvergent fanout): COP must be exact.
netlist tree_circuit() {
    netlist nl("tree");
    const node_id a = nl.add_input("a");
    const node_id b = nl.add_input("b");
    const node_id c = nl.add_input("c");
    const node_id d = nl.add_input("d");
    const node_id e = nl.add_input("e");
    const node_id g1 = nl.add_binary(gate_kind::and_, a, b, "g1");
    const node_id g2 = nl.add_binary(gate_kind::or_, c, d, "g2");
    const node_id g3 = nl.add_binary(gate_kind::xor_, g1, g2, "g3");
    const node_id g4 = nl.add_binary(gate_kind::nand_, g3, e, "g4");
    nl.mark_output(g4, "y");
    return nl;
}

TEST(cop_signal, exact_on_trees) {
    const netlist nl = tree_circuit();
    rng r(3);
    for (int t = 0; t < 20; ++t) {
        weight_vector w(nl.input_count());
        for (auto& x : w) x = r.next_double();
        const auto cop = cop_signal_probabilities(nl, w);
        const auto exact = exact_signal_probabilities_enum(nl, w);
        for (node_id n = 0; n < nl.node_count(); ++n)
            EXPECT_NEAR(cop[n], exact[n], 1e-12) << "node " << n;
    }
}

TEST(cop_signal, known_values) {
    netlist nl("k");
    const node_id a = nl.add_input("a");
    const node_id b = nl.add_input("b");
    const node_id g = nl.add_binary(gate_kind::and_, a, b, "g");
    const node_id h = nl.add_binary(gate_kind::xnor_, a, b, "h");
    nl.mark_output(g, "g_o");
    nl.mark_output(h, "h_o");
    const auto p = cop_signal_probabilities(nl, {0.3, 0.6});
    EXPECT_NEAR(p[g], 0.18, 1e-12);
    EXPECT_NEAR(p[h], 0.3 * 0.6 + 0.7 * 0.4, 1e-12);
}

TEST(cop_signal, reconvergence_is_approximate_but_bounded) {
    // y = and(x, x) has true probability p, COP yields p^2.
    netlist nl("rc");
    const node_id x = nl.add_input("x");
    const node_id b1 = nl.add_unary(gate_kind::buf, x, "b1");
    const node_id b2 = nl.add_unary(gate_kind::buf, x, "b2");
    const node_id y = nl.add_binary(gate_kind::and_, b1, b2, "y");
    nl.mark_output(y, "y");
    const auto p = cop_signal_probabilities(nl, {0.5});
    EXPECT_NEAR(p[y], 0.25, 1e-12);  // the documented COP error
    const auto exact = exact_signal_probabilities_enum(nl, {0.5});
    EXPECT_NEAR(exact[y], 0.5, 1e-12);
}

class prob_seeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(prob_seeds, cutting_bounds_contain_exact_probability) {
    random_circuit_spec spec;
    spec.inputs = 8;
    spec.gates = 50;
    spec.seed = GetParam();
    const netlist nl = make_random_circuit(spec);
    rng r(spec.seed + 5);
    weight_vector w(nl.input_count());
    for (auto& x : w) x = 0.1 + 0.8 * r.next_double();
    const auto exact = exact_signal_probabilities_enum(nl, w);
    const auto bounds = cutting_signal_bounds(nl, w);
    for (node_id n = 0; n < nl.node_count(); ++n) {
        EXPECT_TRUE(bounds[n].contains(exact[n]))
            << "node " << n << ": exact " << exact[n] << " not in ["
            << bounds[n].low << ", " << bounds[n].high << "]";
        EXPECT_LE(bounds[n].low, bounds[n].high + 1e-12);
    }
}

TEST_P(prob_seeds, cutting_bounds_tight_on_trees) {
    const netlist nl = tree_circuit();
    rng r(GetParam());
    weight_vector w(nl.input_count());
    for (auto& x : w) x = r.next_double();
    const auto bounds = cutting_signal_bounds(nl, w);
    const auto cop = cop_signal_probabilities(nl, w);
    for (node_id n = 0; n < nl.node_count(); ++n) {
        EXPECT_NEAR(bounds[n].low, cop[n], 1e-12);
        EXPECT_NEAR(bounds[n].high, cop[n], 1e-12);
    }
}

INSTANTIATE_TEST_SUITE_P(seeds, prob_seeds, ::testing::Values(1, 4, 9, 16, 25));

TEST(observability, chain_attenuates_geometrically) {
    // x -> and(x, c1) -> and(., c2) -> ... output; obs of x is the product
    // of the side-input probabilities.
    netlist nl("chain");
    const node_id x = nl.add_input("x");
    const node_id c1 = nl.add_input("c1");
    const node_id c2 = nl.add_input("c2");
    node_id cur = nl.add_binary(gate_kind::and_, x, c1, "g1");
    cur = nl.add_binary(gate_kind::and_, cur, c2, "g2");
    nl.mark_output(cur, "y");
    const weight_vector w{0.5, 0.25, 0.75};
    const auto p = cop_signal_probabilities(nl, w);
    const auto obs = cop_observabilities(nl, p);
    EXPECT_NEAR(obs.stem[x], 0.25 * 0.75, 1e-12);
    EXPECT_NEAR(obs.stem[nl.find("g1")], 0.75, 1e-12);
    EXPECT_NEAR(obs.stem[nl.find("g2")], 1.0, 1e-12);
}

TEST(observability, xor_does_not_mask) {
    netlist nl("xobs");
    const node_id x = nl.add_input("x");
    const node_id y = nl.add_input("y");
    const node_id g = nl.add_binary(gate_kind::xor_, x, y, "g");
    nl.mark_output(g, "o");
    const auto p = cop_signal_probabilities(nl, {0.9, 0.1});
    const auto obs = cop_observabilities(nl, p);
    EXPECT_DOUBLE_EQ(obs.stem[x], 1.0);
    EXPECT_DOUBLE_EQ(obs.stem[y], 1.0);
}

TEST(observability, fanout_combines) {
    // x feeds two separate and-gates with side probabilities 0.5 and 0.5;
    // stem obs = 1 - (1-0.5)(1-0.5) = 0.75 under COP.
    netlist nl("fobs");
    const node_id x = nl.add_input("x");
    const node_id s1 = nl.add_input("s1");
    const node_id s2 = nl.add_input("s2");
    nl.mark_output(nl.add_binary(gate_kind::and_, x, s1, "g1"), "o1");
    nl.mark_output(nl.add_binary(gate_kind::and_, x, s2, "g2"), "o2");
    const auto p = cop_signal_probabilities(nl, {0.5, 0.5, 0.5});
    const auto obs = cop_observabilities(nl, p);
    EXPECT_NEAR(obs.stem[x], 0.75, 1e-12);
}

// --- detection estimators vs ground truth -------------------------------------

/// Brute-force exact detection probability by enumeration.
std::vector<double> enum_detection_probs(const netlist& nl,
                                         const std::vector<fault>& faults,
                                         const weight_vector& w) {
    std::vector<double> out(faults.size(), 0.0);
    const std::size_t ins = nl.input_count();
    for (std::uint64_t v = 0; v < (1ULL << ins); ++v) {
        std::vector<bool> in(ins);
        double weight = 1.0;
        for (std::size_t i = 0; i < ins; ++i) {
            in[i] = ((v >> i) & 1ULL) != 0;
            weight *= in[i] ? w[i] : 1.0 - w[i];
        }
        const auto good = evaluate(nl, in);
        for (std::size_t fi = 0; fi < faults.size(); ++fi)
            if (evaluate_with_fault(nl, in, faults[fi]) != good)
                out[fi] += weight;
    }
    return out;
}

TEST_P(prob_seeds, exact_estimator_matches_enumeration) {
    random_circuit_spec spec;
    spec.inputs = 7;
    spec.gates = 30;
    spec.seed = GetParam() + 50;
    const netlist nl = make_random_circuit(spec);
    auto faults = generate_full_faults(nl);
    faults.resize(std::min<std::size_t>(faults.size(), 40));
    rng r(spec.seed);
    weight_vector w(nl.input_count());
    for (auto& x : w) x = 0.1 + 0.8 * r.next_double();

    exact_detect_estimator exact;
    const auto est = exact.estimate(nl, faults, w);
    const auto ref = enum_detection_probs(nl, faults, w);
    for (std::size_t i = 0; i < faults.size(); ++i)
        EXPECT_NEAR(est[i], ref[i], 1e-9) << to_string(nl, faults[i]);
}

TEST(cop_estimator, exact_on_fanout_free_and_or_logic) {
    // Tree of and/or gates: activation x observability is exact.
    netlist nl("aotree");
    const node_id a = nl.add_input("a");
    const node_id b = nl.add_input("b");
    const node_id c = nl.add_input("c");
    const node_id d = nl.add_input("d");
    const node_id g1 = nl.add_binary(gate_kind::and_, a, b, "g1");
    const node_id g2 = nl.add_binary(gate_kind::or_, c, d, "g2");
    const node_id g3 = nl.add_binary(gate_kind::and_, g1, g2, "g3");
    nl.mark_output(g3, "y");
    const auto faults = generate_full_faults(nl);
    const weight_vector w{0.3, 0.6, 0.2, 0.7};
    cop_detect_estimator cop;
    const auto est = cop.estimate(nl, faults, w);
    const auto ref = enum_detection_probs(nl, faults, w);
    for (std::size_t i = 0; i < faults.size(); ++i)
        EXPECT_NEAR(est[i], ref[i], 1e-12) << to_string(nl, faults[i]);
}

TEST(cop_estimator, reasonable_on_reconvergent_logic) {
    random_circuit_spec spec;
    spec.inputs = 7;
    spec.gates = 25;
    spec.seed = 123;
    const netlist nl = make_random_circuit(spec);
    auto faults = generate_full_faults(nl);
    const weight_vector w = uniform_weights(nl);
    cop_detect_estimator cop;
    exact_detect_estimator exact;
    const auto a = cop.estimate(nl, faults, w);
    const auto b = exact.estimate(nl, faults, w);
    // COP is a heuristic: require probabilities in range and mostly close.
    double total_err = 0.0;
    for (std::size_t i = 0; i < faults.size(); ++i) {
        EXPECT_GE(a[i], 0.0);
        EXPECT_LE(a[i], 1.0 + 1e-12);
        total_err += std::abs(a[i] - b[i]);
    }
    EXPECT_LT(total_err / static_cast<double>(faults.size()), 0.15);
}

TEST(mc_estimator, converges_to_exact) {
    netlist nl("mc");
    const node_id a = nl.add_input("a");
    const node_id b = nl.add_input("b");
    const node_id c = nl.add_input("c");
    const node_id g = nl.add_gate(gate_kind::and_, {a, b, c}, "g");
    nl.mark_output(g, "y");
    const auto faults = generate_full_faults(nl);
    const weight_vector w{0.5, 0.5, 0.5};
    mc_detect_estimator mc(1 << 16, 99);
    exact_detect_estimator exact;
    const auto est = mc.estimate(nl, faults, w);
    const auto ref = exact.estimate(nl, faults, w);
    for (std::size_t i = 0; i < faults.size(); ++i)
        EXPECT_NEAR(est[i], ref[i], 0.02) << to_string(nl, faults[i]);
}

TEST(stafan_estimator, counts_match_cop_on_trees) {
    const netlist nl = tree_circuit();
    const weight_vector w = uniform_weights(nl);
    const stafan_counts sc = stafan_count(nl, w, 1 << 15, 7);
    const auto cop = cop_signal_probabilities(nl, w);
    for (node_id n = 0; n < nl.node_count(); ++n)
        EXPECT_NEAR(sc.one_controllability[n], cop[n], 0.02) << "node " << n;
}

TEST(stafan_estimator, close_to_exact_on_small_circuit) {
    netlist nl("st");
    const node_id a = nl.add_input("a");
    const node_id b = nl.add_input("b");
    const node_id c = nl.add_input("c");
    const node_id g1 = nl.add_binary(gate_kind::and_, a, b, "g1");
    const node_id g2 = nl.add_binary(gate_kind::or_, g1, c, "g2");
    nl.mark_output(g2, "y");
    const auto faults = generate_full_faults(nl);
    const weight_vector w{0.5, 0.5, 0.5};
    stafan_detect_estimator stafan(1 << 15, 11);
    exact_detect_estimator exact;
    const auto est = stafan.estimate(nl, faults, w);
    const auto ref = exact.estimate(nl, faults, w);
    for (std::size_t i = 0; i < faults.size(); ++i)
        EXPECT_NEAR(est[i], ref[i], 0.05) << to_string(nl, faults[i]);
}

TEST(estimator_factory, known_names) {
    EXPECT_EQ(make_estimator("cop")->name(), "cop");
    EXPECT_EQ(make_estimator("exact-bdd")->name(), "exact-bdd");
    EXPECT_EQ(make_estimator("stafan")->name(), "stafan");
    EXPECT_EQ(make_estimator("monte-carlo")->name(), "monte-carlo");
    EXPECT_THROW(make_estimator("psychic"), invalid_input);
}

// --- redundancy ---------------------------------------------------------------

TEST(redundancy, structural_constants_proven) {
    netlist nl("red");
    const node_id a = nl.add_input("a");
    const node_id zero = nl.add_const(false, "k0");
    const node_id g = nl.add_binary(gate_kind::and_, a, zero, "g");  // == 0
    const node_id y = nl.add_binary(gate_kind::or_, a, g, "y");
    nl.mark_output(y, "y");
    const auto faults = generate_full_faults(nl);
    redundancy_options opt;
    opt.use_bdd_proof = false;
    const auto red = prove_redundant(nl, faults, opt);
    for (std::size_t i = 0; i < faults.size(); ++i) {
        const bool site_is_g = fault_site_driver(nl, faults[i]) == g;
        if (site_is_g && faults[i].value == stuck_at::zero) {
            EXPECT_TRUE(red[i]) << to_string(nl, faults[i]);
        }
    }
}

TEST(redundancy, bdd_proof_finds_logical_redundancy) {
    // y = or(a, and(a, b)): the and-gate is functionally absorbed; its
    // stuck-at-0 is undetectable.
    netlist nl("red2");
    const node_id a = nl.add_input("a");
    const node_id b = nl.add_input("b");
    const node_id g = nl.add_binary(gate_kind::and_, a, b, "g");
    const node_id y = nl.add_binary(gate_kind::or_, a, g, "y");
    nl.mark_output(y, "y");
    const std::vector<fault> faults{{g, -1, stuck_at::zero},
                                    {g, -1, stuck_at::one},
                                    {y, -1, stuck_at::zero}};
    const auto red = prove_redundant(nl, faults);
    EXPECT_TRUE(red[0]);   // g sa0 never changes y
    EXPECT_FALSE(red[1]);  // g sa1 detectable at a=0,b=0? y becomes 1: yes
    EXPECT_FALSE(red[2]);
}

TEST(redundancy, never_flags_detectable_faults) {
    random_circuit_spec spec;
    spec.inputs = 6;
    spec.gates = 30;
    spec.seed = 31;
    const netlist nl = make_random_circuit(spec);
    const auto faults = generate_full_faults(nl);
    const auto red = prove_redundant(nl, faults);
    const auto truth =
        enum_detection_probs(nl, faults, uniform_weights(nl));
    for (std::size_t i = 0; i < faults.size(); ++i) {
        if (red[i]) {
            EXPECT_DOUBLE_EQ(truth[i], 0.0) << to_string(nl, faults[i]);
        }
        // And with the BDD proof enabled, completeness holds too:
        if (truth[i] == 0.0) {
            EXPECT_TRUE(red[i]) << to_string(nl, faults[i]);
        }
    }
}

}  // namespace
}  // namespace wrpt
