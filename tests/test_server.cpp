// Tests for the socket transport (svc/socket.h) and the
// concurrent-connection daemon core (svc/server.h): endpoint parsing,
// round trips over unix and TCP streams, the shared-service contract
// (one result cache and engine-pool set behind every connection), the
// drain protocol, hostile/slow-client containment, and the two
// acceptance properties of this layer — K concurrent clients get
// responses bit-identical (modulo revision/elapsed normalization) to a
// sequential replay, and every job is accounted as exactly one cache hit
// or miss.
//
// The concurrency suites here run under the TSan CI build: they are the
// first place two requests truly race on the service cache and the
// engine-pool LRU.

#include "svc/server.h"

#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "gen/comparator.h"
#include "gen/random_circuit.h"
#include "io/bench_io.h"
#include "svc/poller.h"
#include "svc/service.h"
#include "svc/socket.h"
#include "svc/wire.h"

namespace wrpt {
namespace {

using namespace wrpt::svc;

// --- fixtures ---------------------------------------------------------------

/// A fresh, collision-free unix socket path per test.
endpoint unique_unix_endpoint() {
    static std::atomic<unsigned> counter{0};
    const auto dir = std::filesystem::temp_directory_path();
    return endpoint::unix_at(
        (dir / ("wrpt_test_" + std::to_string(::getpid()) + "_" +
                std::to_string(counter.fetch_add(1)) + ".sock"))
            .string());
}

netlist small_circuit(std::uint64_t seed) {
    random_circuit_spec spec;
    spec.inputs = 10;
    spec.gates = 90;
    spec.seed = seed;
    return make_random_circuit(spec);
}

/// Load an in-memory netlist through the wire (inline .bench text).
request load_request(const netlist& nl, std::uint64_t id) {
    request q;
    q.id = id;
    load_circuit_request p;
    p.bench = write_bench_string(nl);
    p.name = nl.name();
    q.payload = std::move(p);
    return q;
}

request job_line(std::uint64_t id, job_request j) {
    request q;
    q.id = id;
    std::visit([&](auto&& p) { q.payload = std::move(p); }, std::move(j));
    return q;
}

/// Normalize the legitimately volatile response fields: revision stamps
/// are process-unique and elapsed_ms is wall time; `drop_cached` also
/// clears the cached flag, which depends on request interleaving when
/// clients race on one cache.
void scrub(response& r, bool drop_cached) {
    std::visit(
        [&](auto& p) {
            using T = std::decay_t<decltype(p)>;
            if constexpr (std::is_same_v<T, load_circuit_response>) {
                p.revision = 0;
            } else if constexpr (std::is_same_v<T, test_length_response> ||
                                 std::is_same_v<T, optimize_response> ||
                                 std::is_same_v<T, fault_sim_response>) {
                p.revision = 0;
                p.elapsed_ms = 0.0;
                if (drop_cached) p.cached = false;
            } else if constexpr (std::is_same_v<T, matrix_response>) {
                for (response& e : p.results) scrub(e, drop_cached);
            } else if constexpr (std::is_same_v<T, stats_response>) {
                for (pool_stats_payload& ps : p.pools) ps.revision = 0;
            }
        },
        r.payload);
}

std::string normalized(const std::string& line, bool drop_cached = false) {
    response r = decode_response(line);
    scrub(r, drop_cached);
    return encode(r);
}

// --- endpoint parsing -------------------------------------------------------

TEST(socket_endpoint, parses_ports_and_unix_paths) {
    const endpoint tcp = endpoint::parse("4070");
    EXPECT_EQ(tcp.kind, endpoint::transport::tcp);
    EXPECT_EQ(tcp.port, 4070);
    EXPECT_EQ(tcp.describe(), "tcp:4070");
    EXPECT_EQ(endpoint::parse("tcp:0").port, 0);

    const endpoint ux = endpoint::parse("unix:/run/wrpt.sock");
    EXPECT_EQ(ux.kind, endpoint::transport::unix_domain);
    EXPECT_EQ(ux.path, "/run/wrpt.sock");
    EXPECT_EQ(ux.describe(), "unix:/run/wrpt.sock");

    EXPECT_THROW(endpoint::parse(""), socket_error);
    EXPECT_THROW(endpoint::parse("unix:"), socket_error);
    EXPECT_THROW(endpoint::parse("70000"), socket_error);
    EXPECT_THROW(endpoint::parse("host:4070"), socket_error);
    EXPECT_THROW(endpoint::parse("-1"), socket_error);
}

TEST(socket_endpoint, bind_failures_carry_the_errno_text) {
    try {
        listener bad(endpoint::unix_at("/nonexistent-wrpt-dir/x.sock"));
        FAIL() << "bind into a missing directory must throw";
    } catch (const socket_error& e) {
        EXPECT_NE(std::string(e.what()).find("cannot bind"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("No such file or directory"),
                  std::string::npos)
            << e.what();
    }
    // A path bound twice: the second listener reports address-in-use.
    const endpoint ep = unique_unix_endpoint();
    listener first(ep);
    try {
        listener second(ep);
        FAIL() << "double bind must throw";
    } catch (const socket_error& e) {
        EXPECT_NE(std::string(e.what()).find("in use"), std::string::npos)
            << e.what();
    }
}

TEST(socket_endpoint, stale_unix_socket_files_are_reclaimed) {
    // A daemon killed without cleanup leaves its socket file behind;
    // rebinding the same path must succeed once a probe verifies no
    // listener is alive behind it (connect -> ECONNREFUSED), instead of
    // failing EADDRINUSE forever.
    const endpoint ep = unique_unix_endpoint();
    {
        // Fabricate the stale file with raw syscalls: bind creates the
        // filesystem entry, closing the fd without unlink leaves it
        // orphaned — exactly the SIGKILL aftermath.
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        ASSERT_GE(fd, 0);
        sockaddr_un sa{};
        sa.sun_family = AF_UNIX;
        ASSERT_LT(ep.path.size(), sizeof(sa.sun_path));
        std::memcpy(sa.sun_path, ep.path.c_str(), ep.path.size() + 1);
        ASSERT_EQ(::bind(fd, reinterpret_cast<const sockaddr*>(&sa),
                         sizeof(sa)),
                  0);
        ASSERT_EQ(::listen(fd, 1), 0);
        ASSERT_EQ(::close(fd), 0);
    }
    ASSERT_TRUE(std::filesystem::exists(ep.path)) << "stale file expected";

    // The new daemon binds the same path and serves normally.
    service svc;
    server srv(svc, ep);
    client c(srv.where());
    request stats;
    stats.id = 1;
    stats.payload = stats_request{};
    EXPECT_TRUE(c.roundtrip(stats).ok);
    srv.stop();
    srv.wait();

    // A REGULAR file on the path is not a dead listener: the probe sees
    // ENOTSOCK, nothing is unlinked, and the bind failure surfaces.
    const endpoint file_ep = unique_unix_endpoint();
    {
        std::ofstream out(file_ep.path);
        out << "precious data, not a socket\n";
    }
    try {
        listener l(file_ep);
        FAIL() << "binding over a regular file must throw";
    } catch (const socket_error& e) {
        EXPECT_NE(std::string(e.what()).find("cannot bind"),
                  std::string::npos)
            << e.what();
    }
    EXPECT_TRUE(std::filesystem::exists(file_ep.path))
        << "the probe must never unlink a non-socket";
    std::filesystem::remove(file_ep.path);
}

// --- poller backend selection -----------------------------------------------

TEST(poller, force_poll_selects_the_portable_backend) {
    const bool saved = poller::poll_forced();

    poller::set_force_poll(true);
    EXPECT_TRUE(poller::poll_forced());
    {
        poller p;
        EXPECT_STREQ(p.backend_name(), "poll");
    }

    // Existing instances keep their backend; only new ones re-choose.
    poller::set_force_poll(saved);
    poller fresh;
#if defined(WRPT_POLLER_HAS_EPOLL)
    EXPECT_STREQ(fresh.backend_name(), saved ? "poll" : "epoll");
#else
    EXPECT_STREQ(fresh.backend_name(), "poll");
#endif
}

TEST(poller, round_trip_under_forced_poll_backend) {
    // The reactor must behave identically on the portable backend — this
    // is the in-process version of the CI leg that runs the whole suite
    // under WRPT_FORCE_POLL=1.
    const bool saved = poller::poll_forced();
    poller::set_force_poll(true);

    service svc;
    server srv(svc, unique_unix_endpoint());
    client c(srv.where());
    const netlist nl = small_circuit(17);
    ASSERT_TRUE(c.roundtrip(load_request(nl, 1)).ok);
    test_length_request tl;
    tl.circuit = 0;
    const response first = c.roundtrip(job_line(2, tl));
    ASSERT_TRUE(first.ok);
    EXPECT_TRUE(std::get<test_length_response>(first.payload)
                    .length.feasible);
    const response again = c.roundtrip(job_line(3, tl));
    EXPECT_TRUE(std::get<test_length_response>(again.payload).cached);
    srv.stop();
    srv.wait();

    poller::set_force_poll(saved);
}

// --- round trips ------------------------------------------------------------

TEST(server, round_trip_over_unix_socket) {
    service svc;
    server srv(svc, unique_unix_endpoint());
    client c(srv.where());

    const netlist nl = small_circuit(11);
    const response loaded = c.roundtrip(load_request(nl, 1));
    ASSERT_TRUE(loaded.ok);
    const auto& lp = std::get<load_circuit_response>(loaded.payload);
    EXPECT_EQ(lp.circuit, 0u);
    EXPECT_EQ(lp.inputs, nl.input_count());

    test_length_request tl;
    tl.circuit = 0;
    const response first = c.roundtrip(job_line(2, tl));
    ASSERT_TRUE(first.ok);
    const auto& p1 = std::get<test_length_response>(first.payload);
    EXPECT_FALSE(p1.cached);
    EXPECT_TRUE(p1.length.feasible);

    // Same query again: answered from the shared result cache.
    const response second = c.roundtrip(job_line(3, tl));
    const auto& p2 = std::get<test_length_response>(second.payload);
    EXPECT_TRUE(p2.cached);
    EXPECT_EQ(p2.length.test_length, p1.length.test_length);

    // Bad handles come back as envelopes with the id echoed, and the
    // connection survives them.
    test_length_request bad;
    bad.circuit = 99;
    const response err = c.roundtrip(job_line(4, bad));
    EXPECT_FALSE(err.ok);
    EXPECT_EQ(err.id, 4u);

    request stats;
    stats.id = 5;
    stats.payload = stats_request{};
    const response st = c.roundtrip(stats);
    ASSERT_TRUE(st.ok);
    EXPECT_EQ(std::get<stats_response>(st.payload).circuits, 1u);

    request down;
    down.id = 6;
    down.payload = shutdown_request{};
    EXPECT_TRUE(c.roundtrip(down).ok);
    srv.wait();
    EXPECT_EQ(srv.stats().requests, 6u);
}

TEST(server, round_trip_over_tcp_with_ephemeral_port) {
    service svc;
    server srv(svc, endpoint::tcp_at(0));
    ASSERT_GT(srv.where().port, 0) << "ephemeral port must be resolved";
    client c(srv.where());
    const response loaded = c.roundtrip(load_request(small_circuit(12), 1));
    ASSERT_TRUE(loaded.ok);
    fault_sim_request fs;
    fs.circuit = 0;
    fs.patterns = 256;
    const response sim = c.roundtrip(job_line(2, fs));
    ASSERT_TRUE(sim.ok);
    EXPECT_GT(std::get<fault_sim_response>(sim.payload).detected, 0u);
}

TEST(server, connections_share_one_service) {
    // The tentpole contract: sessions are per-connection, the service is
    // not — circuits loaded on one connection serve jobs on another, and
    // the second connection's identical query hits the first's cache
    // entry.
    service svc;
    server srv(svc, unique_unix_endpoint());

    client a(srv.where());
    ASSERT_TRUE(a.roundtrip(load_request(small_circuit(13), 1)).ok);
    optimize_request op;
    op.circuit = 0;
    op.options.max_sweeps = 2;
    const response first = a.roundtrip(job_line(2, op));
    ASSERT_TRUE(first.ok);

    client b(srv.where());
    const response again = b.roundtrip(job_line(7, op));
    ASSERT_TRUE(again.ok);
    const auto& pb = std::get<optimize_response>(again.payload);
    EXPECT_TRUE(pb.cached);
    EXPECT_EQ(pb.weights,
              std::get<optimize_response>(first.payload).weights);
    EXPECT_GE(svc.cache_stats().hits, 1u);
}

// --- hostile and slow clients ----------------------------------------------

TEST(server, oversize_lines_get_an_envelope_then_a_disconnect) {
    service svc;
    server::options opt;
    opt.max_line_bytes = 1024;
    server srv(svc, unique_unix_endpoint(), opt);

    client c(srv.where());
    c.send_line(std::string(8192, 'x'));
    response r;
    ASSERT_TRUE(c.recv(r));
    EXPECT_FALSE(r.ok);
    EXPECT_NE(std::get<error_response>(r.payload).message.find("exceeds"),
              std::string::npos);
    // Framing is gone: the server hangs up after the envelope.
    EXPECT_FALSE(c.recv(r));

    // The cap also bites when the whole over-cap line (newline included)
    // lands in one receive chunk: never delivered as a request.
    client c2(srv.where());
    c2.send_line(std::string(2000, 'y'));
    ASSERT_TRUE(c2.recv(r));
    EXPECT_FALSE(r.ok);
    EXPECT_FALSE(c2.recv(r));

    srv.stop();
    srv.wait();
    EXPECT_EQ(srv.stats().overflows, 2u);
}

TEST(server, malformed_lines_get_envelopes_and_the_session_continues) {
    service svc;
    server srv(svc, unique_unix_endpoint());
    client c(srv.where());

    c.send_line("{\"req\":\"nonsense\",\"id\":41}");
    response r;
    ASSERT_TRUE(c.recv(r));
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.id, 41u);  // addressed via extract_id

    c.send_line("this is not json, \"id\":42 included");
    ASSERT_TRUE(c.recv(r));
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.id, 42u);

    // The same connection still answers real requests afterwards.
    request stats;
    stats.id = 43;
    stats.payload = stats_request{};
    EXPECT_TRUE(c.roundtrip(stats).ok);
    srv.stop();
    srv.wait();
    EXPECT_EQ(srv.stats().protocol_errors, 2u);
}

TEST(server, idle_connections_are_dropped_after_the_timeout) {
    service svc;
    server::options opt;
    opt.idle_timeout_ms = 50;
    server srv(svc, unique_unix_endpoint(), opt);

    client c(srv.where());
    response r;
    // Never send anything: the server must hang up on us.
    EXPECT_FALSE(c.recv(r, /*timeout_ms=*/5000));
    srv.stop();
    srv.wait();
    EXPECT_EQ(srv.stats().timeouts, 1u);
}

TEST(server, slow_drip_bytes_cannot_renew_the_idle_timeout) {
    // The timeout is one deadline per complete line — a client dripping
    // partial-line bytes faster than the timeout must still be dropped.
    service svc;
    server::options opt;
    opt.idle_timeout_ms = 80;
    server srv(svc, unique_unix_endpoint(), opt);

    client c(srv.where());
    line_status st = line_status::timed_out;
    std::string out;
    // Drip a byte every ~25 ms; with a per-byte reset this would stay
    // alive for the whole loop, with a per-line deadline the server
    // hangs up after ~80 ms.
    for (int i = 0; i < 100 && st == line_status::timed_out; ++i) {
        try {
            c.send_raw("{");
        } catch (const socket_error&) {
            // Already disconnected; drain the pending EOF below.
        }
        st = c.recv_line(out, /*timeout_ms=*/25);
    }
    EXPECT_EQ(st, line_status::eof);
    srv.stop();
    srv.wait();
    EXPECT_EQ(srv.stats().timeouts, 1u);
}

TEST(server, max_connections_refuses_the_excess) {
    service svc;
    server::options opt;
    opt.max_connections = 1;
    server srv(svc, unique_unix_endpoint(), opt);

    client keeper(srv.where());
    request stats;
    stats.id = 1;
    stats.payload = stats_request{};
    ASSERT_TRUE(keeper.roundtrip(stats).ok);  // session is registered

    client excess(srv.where());  // accepted, then immediately closed
    response r;
    // The refusal may land before or after our request leaves; either
    // way the observable outcome is EOF, never an answer.
    try {
        excess.send(stats);
    } catch (const socket_error&) {
        // Refused fast enough that the send already hit a closed peer.
    }
    EXPECT_FALSE(excess.recv(r, /*timeout_ms=*/5000));

    srv.stop();
    srv.wait();
    EXPECT_GE(srv.stats().refused, 1u);
}

// --- drain protocol ---------------------------------------------------------

TEST(server, shutdown_drains_answers_in_flight_and_refuses_new) {
    service svc;
    const endpoint ep = unique_unix_endpoint();
    auto srv = std::make_unique<server>(svc, ep);

    client bystander(srv->where());
    ASSERT_TRUE(bystander.roundtrip(load_request(small_circuit(14), 1)).ok);

    client terminator(srv->where());
    request down;
    down.id = 9;
    down.payload = shutdown_request{};
    const response ack = terminator.roundtrip(down);
    EXPECT_TRUE(ack.ok);
    EXPECT_EQ(ack.kind(), response_kind::shutdown);

    srv->wait();
    EXPECT_TRUE(srv->draining());
    // The bystander's blocked read woke with EOF instead of hanging.
    response r;
    EXPECT_FALSE(bystander.recv(r, /*timeout_ms=*/5000));
    // And the endpoint is gone: new clients cannot connect.
    srv.reset();  // close + unlink
    EXPECT_THROW(client{ep}, socket_error);
}

TEST(server, stop_is_idempotent_and_safe_from_outside) {
    service svc;
    server srv(svc, unique_unix_endpoint());
    client c(srv.where());
    // One round trip first, so the connection is registered (not still in
    // the accept backlog) when the drain half-closes the readers.
    request stats;
    stats.id = 1;
    stats.payload = stats_request{};
    ASSERT_TRUE(c.roundtrip(stats).ok);
    srv.stop();
    srv.stop();
    srv.wait();
    srv.wait();
    response r;
    EXPECT_FALSE(c.recv(r, /*timeout_ms=*/5000));
}

// --- concurrency ------------------------------------------------------------

// The stress shape: K client threads, each issuing the same mixed script
// (duplicate cache keys across clients, client-private fault-sim seeds,
// evict and stats interleaved) against one server. Every request must be
// answered exactly once with its own id, every job response must be
// bit-identical to a sequential replay on a fresh service (modulo
// revision/elapsed/cached normalization — `cached` legitimately depends
// on which client won the race), and the service must account every job
// as exactly one cache hit or miss.
TEST(server, concurrent_clients_match_sequential_replay) {
    constexpr std::size_t kClients = 8;

    service::options so;
    server::options vo;
    service live(so);
    server srv(live, unique_unix_endpoint(), vo);

    // Three shared circuits, loaded up front over one connection.
    {
        client loader(srv.where());
        for (std::uint64_t s = 0; s < 3; ++s)
            ASSERT_TRUE(
                loader.roundtrip(load_request(small_circuit(20 + s), s)).ok);
    }

    // The per-client script. Job requests (and how many session jobs they
    // expand to) are tagged so the accounting below can count them.
    struct step {
        request q;
        std::size_t jobs = 0;  ///< 0 for stats/evict
    };
    const auto script_for = [](std::size_t who) {
        std::vector<step> script;
        std::uint64_t id = who * 1000;
        test_length_request tl0;
        tl0.circuit = 0;
        script.push_back({job_line(++id, tl0), 1});  // dup key: all clients
        optimize_request op;
        op.circuit = who % 2;
        op.options.max_sweeps = 2;
        script.push_back({job_line(++id, op), 1});  // dup key: half of them
        request stats;
        stats.id = ++id;
        stats.payload = stats_request{};
        script.push_back({stats, 0});
        fault_sim_request fsu;
        fsu.circuit = 1;
        fsu.patterns = 256;
        fsu.seed = 1000 + who;
        script.push_back({job_line(++id, fsu), 1});  // client-private key
        if (who % 4 == 3) {
            request evict;
            evict.id = ++id;
            evict_request ev;
            ev.all = false;
            ev.circuit = 0;
            evict.payload = ev;
            script.push_back({evict, 0});  // interleaved cache eviction
        }
        test_length_request tl2;
        tl2.circuit = 2;
        tl2.confidence = 0.9;
        script.push_back({job_line(++id, tl2), 1});
        request mx;
        mx.id = ++id;
        matrix_request m;
        m.kind = job_kind::test_length;
        m.circuits = {0, 1, 2};
        m.weight_sets = {{}};
        mx.payload = std::move(m);
        script.push_back({mx, 3});
        fault_sim_request fsd;
        fsd.circuit = 0;
        fsd.patterns = 256;
        fsd.seed = 7;
        script.push_back({job_line(++id, fsd), 1});  // dup key: all clients
        return script;
    };

    struct transcript {
        std::vector<request> sent;
        std::vector<std::string> received;
    };
    std::vector<transcript> transcripts(kClients);
    std::size_t expected_jobs = 0;
    for (std::size_t who = 0; who < kClients; ++who)
        for (const step& s : script_for(who)) expected_jobs += s.jobs;

    std::vector<std::thread> threads;
    for (std::size_t who = 0; who < kClients; ++who) {
        threads.emplace_back([&, who] {
            client c(srv.where());
            for (const step& s : script_for(who)) {
                c.send(s.q);
                std::string line;
                ASSERT_EQ(c.recv_line(line), line_status::ok);
                transcripts[who].sent.push_back(s.q);
                transcripts[who].received.push_back(line);
            }
        });
    }
    for (std::thread& t : threads) t.join();

    // Exactly one response per request, each echoing its own id.
    const service::cache_counters counters = live.cache_stats();
    for (std::size_t who = 0; who < kClients; ++who) {
        const auto& t = transcripts[who];
        ASSERT_EQ(t.sent.size(), script_for(who).size());
        ASSERT_EQ(t.received.size(), t.sent.size());
        for (std::size_t i = 0; i < t.sent.size(); ++i) {
            const response r = decode_response(t.received[i]);
            EXPECT_EQ(r.id, t.sent[i].id) << "client " << who << " step " << i;
            EXPECT_TRUE(r.ok) << "client " << who << " step " << i << ": "
                              << t.received[i];
        }
    }

    // Every job is exactly one hit or one miss — the cache accounting
    // holds under the race (duplicate concurrent misses both count).
    EXPECT_EQ(counters.hits + counters.misses, expected_jobs);

    // Bit-identity against a sequential replay: a fresh service, same
    // circuits, every job request replayed one by one. Job payloads must
    // match the live concurrent responses byte for byte after
    // normalizing revision/elapsed/cached.
    service replay(so);
    for (std::uint64_t s = 0; s < 3; ++s)
        ASSERT_TRUE(replay.handle(load_request(small_circuit(20 + s), s)).ok);
    for (std::size_t who = 0; who < kClients; ++who) {
        const auto& t = transcripts[who];
        for (std::size_t i = 0; i < t.sent.size(); ++i) {
            const request_kind k = t.sent[i].kind();
            if (k == request_kind::stats || k == request_kind::evict)
                continue;  // counters legitimately depend on interleaving
            const response expected = replay.handle(t.sent[i]);
            EXPECT_EQ(normalized(t.received[i], /*drop_cached=*/true),
                      normalized(encode(expected), /*drop_cached=*/true))
                << "client " << who << " step " << i;
        }
    }

    request down;
    down.id = 424242;
    down.payload = shutdown_request{};
    client(srv.where()).roundtrip(down);
    srv.wait();
}

// The acceptance shape: after one warm-up pass, a scripted session is
// replayed by 8 concurrent clients and every client's response stream is
// byte-identical (modulo revision/elapsed normalization) to the
// single-client reference stream — the socket analogue of the CI golden
// diff (which runs the same check through `wrpt_cli serve/request`).
TEST(server, eight_clients_replay_a_warm_session_identically) {
    constexpr std::size_t kClients = 8;

    service svc;
    server srv(svc, unique_unix_endpoint());

    const auto session_script = [] {
        std::vector<request> script;
        test_length_request tl;
        tl.circuit = 0;
        script.push_back(job_line(1, tl));
        optimize_request op;
        op.circuit = 0;
        op.options.max_sweeps = 2;
        script.push_back(job_line(2, op));
        script.push_back(job_line(3, op));  // repeat: cached either way
        fault_sim_request fs;
        fs.circuit = 0;
        fs.patterns = 512;
        fs.seed = 7;
        script.push_back(job_line(4, fs));
        request mx;
        mx.id = 5;
        matrix_request m;
        m.kind = job_kind::test_length;
        m.weight_sets = {{}};
        mx.payload = std::move(m);
        script.push_back(mx);
        test_length_request bad;
        bad.circuit = 66;
        script.push_back(job_line(6, bad));  // deterministic envelope
        return script;
    };

    const auto run_session = [&](std::vector<std::string>& out) {
        client c(srv.where());
        for (const request& q : session_script()) {
            c.send(q);
            std::string line;
            ASSERT_EQ(c.recv_line(line), line_status::ok);
            out.push_back(normalized(line));
        }
    };

    {
        client loader(srv.where());
        ASSERT_TRUE(loader.roundtrip(load_request(small_circuit(31), 1)).ok);
    }
    // Warm-up pass: after it, every job in the script is a cache hit, so
    // the cached flags (and the zero elapsed) are deterministic for every
    // later client however the 8 sessions interleave.
    std::vector<std::string> reference_warmup;
    run_session(reference_warmup);
    std::vector<std::string> reference;
    run_session(reference);

    std::vector<std::vector<std::string>> streams(kClients);
    std::vector<std::thread> threads;
    for (std::size_t who = 0; who < kClients; ++who)
        threads.emplace_back([&, who] { run_session(streams[who]); });
    for (std::thread& t : threads) t.join();

    for (std::size_t who = 0; who < kClients; ++who) {
        ASSERT_EQ(streams[who].size(), reference.size());
        for (std::size_t i = 0; i < reference.size(); ++i)
            EXPECT_EQ(streams[who][i], reference[i])
                << "client " << who << " line " << i;
    }

    srv.stop();
    srv.wait();
}

// --- backpressure -----------------------------------------------------------

TEST(server, pipelined_requests_are_answered_in_order) {
    // The reactor hands a connection's lines to one worker at a time (a
    // per-connection actor), so a pipelining client gets its responses
    // back in request order — the JSON-lines contract the blocking
    // server gave for free.
    service svc;
    server srv(svc, unique_unix_endpoint());
    client c(srv.where());
    ASSERT_TRUE(c.roundtrip(load_request(small_circuit(61), 1)).ok);

    constexpr std::uint64_t kPipelined = 64;
    test_length_request tl;
    tl.circuit = 0;
    for (std::uint64_t i = 0; i < kPipelined; ++i)
        c.send(job_line(100 + i, tl));  // no reads until everything left
    for (std::uint64_t i = 0; i < kPipelined; ++i) {
        response r;
        ASSERT_TRUE(c.recv(r)) << "response " << i;
        EXPECT_EQ(r.id, 100 + i) << "responses must keep request order";
        EXPECT_TRUE(r.ok);
    }
    srv.stop();
    srv.wait();
    EXPECT_EQ(srv.stats().requests, kPipelined + 1);
}

TEST(server, ten_thousand_pipelined_requests_reuse_buffers_bit_identically) {
    // Stress for the buffer-reuse hot path: the outbox marks its sent
    // prefix by offset instead of erasing, request lines recycle through
    // the retired-buffer pool, and every response encodes into the one
    // worker scratch string. None of that may reorder a response or
    // change a byte under a deep pipeline on a single connection.
    service svc;
    server::options opt;
    opt.max_queue_bytes = 0;  // the reader lags the writer by design:
                              // this test is about bytes, not backpressure
    server srv(svc, unique_unix_endpoint(), opt);
    client c(srv.where());
    ASSERT_TRUE(c.roundtrip(load_request(small_circuit(63), 1)).ok);

    test_length_request tl;
    tl.circuit = 0;
    ASSERT_TRUE(c.roundtrip(job_line(2, tl)).ok);  // warm the cache: every
                                                   // pipelined copy below
                                                   // is a pure hit

    constexpr std::uint64_t kPipelined = 10000;
    std::thread writer([&] {
        for (std::uint64_t i = 0; i < kPipelined; ++i)
            c.send(job_line(1000 + i, tl));
    });

    // Cache hits carry elapsed_ms 0 and one stable revision, so the
    // responses must be bit-identical down to the id (the canonical
    // encoders make re-encoding the decoded line an exact byte check).
    std::string reference;
    for (std::uint64_t i = 0; i < kPipelined; ++i) {
        std::string line;
        ASSERT_EQ(c.recv_line(line, /*timeout_ms=*/30000), line_status::ok)
            << "response " << i;
        response r = decode_response(line);
        ASSERT_TRUE(r.ok) << "response " << i;
        ASSERT_EQ(r.id, 1000 + i) << "responses must keep request order";
        ASSERT_TRUE(std::get<test_length_response>(r.payload).cached)
            << "response " << i;
        r.id = 0;
        const std::string canon = encode(r);
        if (i == 0) {
            reference = canon;
        } else {
            ASSERT_EQ(canon, reference) << "bytes diverged at response " << i;
        }
    }
    writer.join();
    srv.stop();
    srv.wait();
    EXPECT_EQ(srv.stats().requests, kPipelined + 2);
}

TEST(server, slow_readers_are_refused_and_dropped) {
    // A client that keeps sending but never drains its responses must
    // not buffer unboundedly inside the daemon: once the kernel socket
    // buffers are full and the per-connection outbox cap is hit, the
    // server queues a refusal envelope, drops the rest, and hangs up.
    service svc;
    server::options opt;
    opt.max_queue_bytes = 4096;     // tiny response budget
    opt.max_pending_requests = 0;   // keep reading: isolate the response side
    server srv(svc, unique_unix_endpoint(), opt);

    client c(srv.where());
    ASSERT_TRUE(c.roundtrip(load_request(small_circuit(62), 1)).ok);

    // Each matrix answers with 64 embedded test-length responses (~10KB
    // encoded, cache hits after the first), so a short pipelined burst
    // overwhelms kernel buffering plus the 4KB outbox quickly.
    request mx;
    matrix_request m;
    m.kind = job_kind::test_length;
    m.circuits.assign(64, 0);
    m.weight_sets = {{}};
    mx.payload = std::move(m);
    bool peer_closed_early = false;
    for (std::uint64_t i = 0; i < 256 && !peer_closed_early; ++i) {
        mx.id = 100 + i;
        try {
            c.send(mx);  // never reading
        } catch (const socket_error&) {
            peer_closed_early = true;  // already dropped mid-burst
        }
    }

    // Now drain: some real responses, then the refusal envelope, then
    // EOF — and the drop is visible in the counters.
    bool saw_refusal = false;
    std::string line;
    while (c.recv_line(line, /*timeout_ms=*/10000) == line_status::ok) {
        const response r = decode_response(line);
        if (!r.ok) {
            EXPECT_NE(std::get<error_response>(r.payload).message.find(
                          "slow reader"),
                      std::string::npos);
            saw_refusal = true;
        } else {
            EXPECT_FALSE(saw_refusal) << "refusal must be the last line";
        }
    }
    EXPECT_TRUE(saw_refusal);
    srv.stop();
    srv.wait();
    EXPECT_GE(srv.stats().queue_drops, 1u);
}

TEST(server, slow_but_draining_readers_receive_the_whole_stream) {
    // send_timeout bounds a *stall*, not the whole transfer: a client
    // that EOF'd its request side and drains its responses slowly — each
    // pause well under the timeout, the total far over it — must receive
    // every line. (A deadline armed once and never cleared on progress
    // would cut this client off mid-stream.)
    service svc;
    server::options opt;
    opt.send_timeout_ms = 250;  // total drain below takes several times this
    opt.max_queue_bytes = 0;    // isolate the deadline: no slow-reader drop
    server srv(svc, unique_unix_endpoint(), opt);

    client c(srv.where());
    ASSERT_TRUE(c.roundtrip(load_request(small_circuit(64), 1)).ok);

    // Pipeline a response volume far beyond kernel socket buffering, so
    // the server still holds outbox bytes when it sees our EOF and arms
    // the drop deadline.
    constexpr std::uint64_t kBursts = 48;
    request mx;
    matrix_request m;
    m.kind = job_kind::test_length;
    m.circuits.assign(128, 0);  // ~20KB per encoded response, cache hits
    m.weight_sets = {{}};
    mx.payload = std::move(m);
    for (std::uint64_t i = 0; i < kBursts; ++i) {
        mx.id = 100 + i;
        c.send(mx);
    }
    c.shutdown_write();  // orderly EOF: no more requests, still reading

    // Drain slowly: ~40ms between lines keeps every stall far under the
    // 250ms grace while the full transfer takes ~2s.
    std::uint64_t received = 0;
    std::string line;
    while (c.recv_line(line, /*timeout_ms=*/10000) == line_status::ok) {
        const response r = decode_response(line);
        EXPECT_TRUE(r.ok) << std::get<error_response>(r.payload).message;
        ++received;
        std::this_thread::sleep_for(std::chrono::milliseconds(40));
    }
    EXPECT_EQ(received, kBursts);
    srv.stop();
    srv.wait();
    EXPECT_EQ(srv.stats().timeouts, 0u);
    EXPECT_EQ(srv.stats().queue_drops, 0u);
}

TEST(server, request_flow_control_pauses_reads_without_dropping) {
    // The request-side bound is flow control, not rejection: a deep
    // pipelined burst beyond max_pending_requests backs up into the
    // client's kernel buffer and still gets every answer, in order.
    service svc;
    server::options opt;
    opt.max_pending_requests = 4;
    server srv(svc, unique_unix_endpoint(), opt);
    client c(srv.where());
    ASSERT_TRUE(c.roundtrip(load_request(small_circuit(63), 1)).ok);

    constexpr std::uint64_t kBurst = 128;
    test_length_request tl;
    tl.circuit = 0;
    std::thread reader([&] {
        for (std::uint64_t i = 0; i < kBurst; ++i) {
            response r;
            ASSERT_TRUE(c.recv(r, /*timeout_ms=*/30000)) << "response " << i;
            EXPECT_EQ(r.id, 200 + i);
        }
    });
    for (std::uint64_t i = 0; i < kBurst; ++i) c.send(job_line(200 + i, tl));
    reader.join();
    srv.stop();
    srv.wait();
    EXPECT_EQ(srv.stats().requests, kBurst + 1);
    EXPECT_EQ(srv.stats().queue_drops, 0u);
}

TEST(server, mixed_fast_and_slow_clients_match_sequential_replay) {
    // Backpressure must not bend results: 8 clients — half reading
    // promptly, half pipelining their whole script first and draining
    // late through a deliberately tiny flow-control window — all get
    // response streams bit-identical to the warm single-client
    // reference.
    constexpr std::size_t kClients = 8;

    service svc;
    server::options opt;
    opt.max_pending_requests = 2;  // the slow half leans on flow control
    server srv(svc, unique_unix_endpoint(), opt);
    {
        client loader(srv.where());
        ASSERT_TRUE(loader.roundtrip(load_request(small_circuit(64), 1)).ok);
    }

    const auto session_script = [] {
        std::vector<request> script;
        test_length_request tl;
        tl.circuit = 0;
        script.push_back(job_line(1, tl));
        optimize_request op;
        op.circuit = 0;
        op.options.max_sweeps = 2;
        script.push_back(job_line(2, op));
        fault_sim_request fs;
        fs.circuit = 0;
        fs.patterns = 256;
        fs.seed = 5;
        script.push_back(job_line(3, fs));
        request mx;
        mx.id = 4;
        matrix_request m;
        m.kind = job_kind::test_length;
        m.circuits.assign(4, 0);
        m.weight_sets = {{}};
        mx.payload = std::move(m);
        script.push_back(mx);
        test_length_request bad;
        bad.circuit = 66;
        script.push_back(job_line(5, bad));  // deterministic envelope
        return script;
    };

    const auto run_fast = [&](std::vector<std::string>& out) {
        client c(srv.where());
        for (const request& q : session_script()) {
            c.send(q);
            std::string line;
            ASSERT_EQ(c.recv_line(line), line_status::ok);
            out.push_back(normalized(line));
        }
    };
    const auto run_slow = [&](std::vector<std::string>& out) {
        // Pipeline everything, dawdle, then drain — the server pauses
        // reading us at 2 pending requests and resumes as the worker
        // catches up; nothing may be lost or reordered.
        client c(srv.where());
        const auto script = session_script();
        for (const request& q : script) c.send(q);
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        for (std::size_t i = 0; i < script.size(); ++i) {
            std::string line;
            ASSERT_EQ(c.recv_line(line, /*timeout_ms=*/30000),
                      line_status::ok);
            out.push_back(normalized(line));
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
    };

    // Warm-up, then the deterministic reference stream.
    std::vector<std::string> warmup, reference;
    run_fast(warmup);
    run_fast(reference);

    std::vector<std::vector<std::string>> streams(kClients);
    std::vector<std::thread> threads;
    for (std::size_t who = 0; who < kClients; ++who) {
        threads.emplace_back([&, who] {
            if (who % 2 == 0)
                run_fast(streams[who]);
            else
                run_slow(streams[who]);
        });
    }
    for (std::thread& t : threads) t.join();

    for (std::size_t who = 0; who < kClients; ++who) {
        ASSERT_EQ(streams[who].size(), reference.size()) << "client " << who;
        for (std::size_t i = 0; i < reference.size(); ++i)
            EXPECT_EQ(streams[who][i], reference[i])
                << "client " << who << " line " << i;
    }
    srv.stop();
    srv.wait();
    EXPECT_EQ(srv.stats().queue_drops, 0u);
}

// --- reactor scale ----------------------------------------------------------

#ifdef __linux__
namespace {
int process_thread_count() {
    std::FILE* f = std::fopen("/proc/self/status", "r");
    if (!f) return -1;
    char line[256];
    int threads = -1;
    while (std::fgets(line, sizeof line, f))
        if (std::sscanf(line, "Threads: %d", &threads) == 1) break;
    std::fclose(f);
    return threads;
}
}  // namespace

TEST(server, thread_count_does_not_scale_with_connections) {
    // The event-driven core's defining property: the daemon is one
    // reactor plus a fixed worker set, so parking 50 extra connections
    // must not add a single thread (the session-per-connection model
    // would add 50).
    service svc;
    server srv(svc, unique_unix_endpoint());
    client active(srv.where());
    request stats;
    stats.id = 1;
    stats.payload = stats_request{};
    ASSERT_TRUE(active.roundtrip(stats).ok);

    const int before = process_thread_count();
    ASSERT_GT(before, 0);

    std::vector<client> parked(50);
    for (auto& p : parked) p.connect(srv.where(), 2000);
    // Make sure every parked connection is truly registered, not still
    // in the backlog: the admission counter is the reactor's own view.
    for (int spin = 0; spin < 500 && srv.stats().accepted < 51; ++spin)
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    EXPECT_EQ(srv.stats().accepted, 51u);
    EXPECT_EQ(srv.stats().active, 51u);

    EXPECT_EQ(process_thread_count(), before)
        << "holding idle connections must not spawn threads";
    ASSERT_TRUE(active.roundtrip(stats).ok);  // still serving under load
    srv.stop();
    srv.wait();
}
#endif  // __linux__

#if defined(__SANITIZE_THREAD__)
#define WRPT_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define WRPT_TSAN 1
#endif
#endif

TEST(server, accept_backoff_survives_fd_exhaustion) {
#ifdef WRPT_TSAN
    GTEST_SKIP() << "fd exhaustion starves the sanitizer runtime itself";
#else
    // Descriptor exhaustion at accept() (EMFILE) must not kill the
    // daemon or its existing sessions: the reactor backs off, keeps
    // serving, and accepts the waiting peer once descriptors return.
    service svc;
    server::options opt;
    opt.accept_backoff_ms = 20;
    server srv(svc, unique_unix_endpoint(), opt);
    client established(srv.where());
    request stats;
    stats.id = 1;
    stats.payload = stats_request{};
    ASSERT_TRUE(established.roundtrip(stats).ok);

    rlimit saved{};
    ASSERT_EQ(getrlimit(RLIMIT_NOFILE, &saved), 0);
    rlimit tight = saved;
    tight.rlim_cur = 64;
    ASSERT_EQ(setrlimit(RLIMIT_NOFILE, &tight), 0);

    // Burn every free descriptor slot...
    std::vector<int> burned;
    for (;;) {
        const int fd = ::dup(0);
        if (fd < 0) break;
        burned.push_back(fd);
    }
    ASSERT_FALSE(burned.empty());
    // ...then hand exactly one back so the client can make its socket
    // while the server still has none to accept with.
    ::close(burned.back());
    burned.pop_back();

    client starved(srv.where(), 2000);  // queued in the backlog
    bool backed_off = false;
    for (int spin = 0; spin < 1000 && !backed_off; ++spin) {
        backed_off = srv.stats().accept_backoffs > 0;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_TRUE(backed_off);
    // The established session kept working through the exhaustion.
    ASSERT_TRUE(established.roundtrip(stats).ok);

    for (const int fd : burned) ::close(fd);
    ASSERT_EQ(setrlimit(RLIMIT_NOFILE, &saved), 0);

    // Descriptors are back: the backoff expires and the waiting peer is
    // finally served on its original connection.
    stats.id = 2;
    ASSERT_TRUE(starved.roundtrip(stats).ok);
    srv.stop();
    srv.wait();
    EXPECT_GE(srv.stats().accept_backoffs, 1u);
    EXPECT_EQ(srv.stats().accepted, 2u);
#endif
}

// --- wire-visible server stats ----------------------------------------------

TEST(server, stats_responses_carry_the_server_section_over_sockets) {
    service svc;
    server::options opt;
    opt.workers = 2;
    opt.max_connections = 32;
    server srv(svc, unique_unix_endpoint(), opt);
    client c(srv.where());
    request stats;
    stats.id = 7;
    stats.payload = stats_request{};
    const response r = c.roundtrip(stats);
    ASSERT_TRUE(r.ok);
    const auto& sp = std::get<stats_response>(r.payload).server;
    ASSERT_TRUE(sp.present) << "socket-served stats must carry the section";
    EXPECT_EQ(sp.workers, 2u);
    EXPECT_EQ(sp.max_connections, 32u);
    EXPECT_EQ(sp.active, 1u);
    EXPECT_EQ(sp.accepted, 1u);
    EXPECT_EQ(sp.requests, 1u);  // this very request, counted
    EXPECT_EQ(sp.queue_drops, 0u);

    // The direct in-process path stays clean: no server, no section —
    // and no "server" key on the wire, so stdin-daemon transcripts are
    // unchanged.
    const response direct = svc.handle(stats);
    EXPECT_FALSE(std::get<stats_response>(direct.payload).server.present);
    EXPECT_EQ(encode(direct).find("\"server\""), std::string::npos);
    EXPECT_NE(encode(r).find("\"server\""), std::string::npos);

    srv.stop();
    srv.wait();
}

TEST(server, concurrent_loads_get_distinct_handles) {
    // load_circuit takes the session structure exclusively; concurrent
    // loads and jobs must interleave without torn handles.
    service svc;
    server srv(svc, unique_unix_endpoint());
    {
        client c(srv.where());
        ASSERT_TRUE(c.roundtrip(load_request(small_circuit(41), 1)).ok);
    }
    constexpr std::size_t kLoaders = 4;
    std::vector<std::size_t> handles(kLoaders, SIZE_MAX);
    std::vector<std::thread> threads;
    for (std::size_t who = 0; who < kLoaders; ++who) {
        threads.emplace_back([&, who] {
            client c(srv.where());
            // An empty-circuits matrix expands against the live circuit
            // table — the expansion itself must ride the session lock,
            // so racing it against the loads is the regression check.
            request mx;
            mx.id = 1;
            matrix_request m;
            m.kind = job_kind::test_length;
            m.weight_sets = {{}};
            mx.payload = std::move(m);
            ASSERT_TRUE(c.roundtrip(mx).ok);
            const response r =
                c.roundtrip(load_request(small_circuit(50 + who), 2));
            ASSERT_TRUE(r.ok);
            handles[who] = std::get<load_circuit_response>(r.payload).circuit;
            test_length_request tl;
            tl.circuit = 0;
            ASSERT_TRUE(c.roundtrip(job_line(3, tl)).ok);
        });
    }
    for (std::thread& t : threads) t.join();

    std::vector<std::size_t> sorted = handles;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < sorted.size(); ++i)
        EXPECT_EQ(sorted[i], i + 1) << "handles must be dense and distinct";
    EXPECT_EQ(svc.session().circuit_count(), kLoaders + 1);
    srv.stop();
    srv.wait();
}

}  // namespace
}  // namespace wrpt
