// Functional tests of the 74181-inspired ALU against its reference model.

#include "gen/alu.h"

#include <gtest/gtest.h>

#include "helpers.h"
#include "sim/logic_sim.h"
#include "util/error.h"
#include "util/rng.h"

namespace wrpt {
namespace {

using ::wrpt::testing::get_bit;
using ::wrpt::testing::get_bus;
using ::wrpt::testing::set_bit;
using ::wrpt::testing::set_bus;

struct alu_mode {
    unsigned s;
    bool m;
    bool cin;
};

class alu_modes : public ::testing::TestWithParam<alu_mode> {};

TEST_P(alu_modes, matches_reference_random_operands) {
    const auto [s, m, cin] = GetParam();
    const std::size_t width = 8;
    const netlist nl = make_alu(width);
    rng rg(100 + s + (m ? 8 : 0) + (cin ? 16 : 0));
    for (int t = 0; t < 200; ++t) {
        std::uint64_t a = rg.next_word() & 0xff;
        std::uint64_t b = rg.next_word() & 0xff;
        if (t % 4 == 0) b = a;
        std::vector<bool> in(nl.input_count());
        set_bus(nl, in, "A", a, width);
        set_bus(nl, in, "B", b, width);
        set_bit(nl, in, "S0", (s & 1) != 0);
        set_bit(nl, in, "S1", (s & 2) != 0);
        set_bit(nl, in, "M", m);
        set_bit(nl, in, "CIN", cin);
        const auto out = evaluate(nl, in);
        const alu_verdict v = alu_reference(a, b, s, m, cin, width);
        EXPECT_EQ(get_bus(nl, out, "F", width), v.f)
            << "a=" << a << " b=" << b << " s=" << s << " m=" << m;
        EXPECT_EQ(get_bit(nl, out, "COUT"), v.carry_out);
        EXPECT_EQ(get_bit(nl, out, "AEQB"), v.a_eq_b);
        EXPECT_EQ(get_bit(nl, out, "ZERO"), v.zero);
    }
}

INSTANTIATE_TEST_SUITE_P(
    modes, alu_modes,
    ::testing::Values(alu_mode{0, false, false}, alu_mode{0, false, true},
                      alu_mode{1, false, false}, alu_mode{1, false, true},
                      alu_mode{2, false, false}, alu_mode{2, false, true},
                      alu_mode{3, false, false}, alu_mode{3, false, true},
                      alu_mode{0, true, false}, alu_mode{1, true, false},
                      alu_mode{2, true, false}, alu_mode{3, true, true}));

TEST(alu, exhaustive_2bit_all_modes) {
    const netlist nl = make_alu(2);
    for (std::uint64_t a = 0; a < 4; ++a)
        for (std::uint64_t b = 0; b < 4; ++b)
            for (unsigned s = 0; s < 4; ++s)
                for (int m = 0; m < 2; ++m)
                    for (int cin = 0; cin < 2; ++cin) {
                        std::vector<bool> in(nl.input_count());
                        set_bus(nl, in, "A", a, 2);
                        set_bus(nl, in, "B", b, 2);
                        set_bit(nl, in, "S0", (s & 1) != 0);
                        set_bit(nl, in, "S1", (s & 2) != 0);
                        set_bit(nl, in, "M", m != 0);
                        set_bit(nl, in, "CIN", cin != 0);
                        const auto out = evaluate(nl, in);
                        const alu_verdict v =
                            alu_reference(a, b, s, m != 0, cin != 0, 2);
                        ASSERT_EQ(get_bus(nl, out, "F", 2), v.f)
                            << a << "," << b << "," << s << "," << m << ","
                            << cin;
                        ASSERT_EQ(get_bit(nl, out, "COUT"), v.carry_out);
                    }
}

TEST(alu, subtraction_semantics) {
    // S=01, M=0, CIN=1 computes A - B exactly.
    const std::size_t width = 8;
    const netlist nl = make_alu(width);
    rng rg(55);
    for (int t = 0; t < 100; ++t) {
        const std::uint64_t a = rg.next_word() & 0xff;
        const std::uint64_t b = rg.next_word() & 0xff;
        std::vector<bool> in(nl.input_count());
        set_bus(nl, in, "A", a, width);
        set_bus(nl, in, "B", b, width);
        set_bit(nl, in, "S0", true);
        set_bit(nl, in, "S1", false);
        set_bit(nl, in, "M", false);
        set_bit(nl, in, "CIN", true);
        const auto out = evaluate(nl, in);
        EXPECT_EQ(get_bus(nl, out, "F", width), (a - b) & 0xff);
        // No borrow <=> a >= b (carry out of A + ~B + 1).
        EXPECT_EQ(get_bit(nl, out, "COUT"), a >= b);
    }
}

TEST(alu, group_pg_consistency_with_carry) {
    // For the arithmetic chain: carry_out == G_group OR (P_group AND cin).
    const std::size_t width = 6;
    const netlist nl = make_alu(width);
    rng rg(66);
    for (int t = 0; t < 300; ++t) {
        const std::uint64_t a = rg.next_word() & 0x3f;
        const std::uint64_t b = rg.next_word() & 0x3f;
        const unsigned s = static_cast<unsigned>(rg.next_below(4));
        const bool cin = rg.next_bool(0.5);
        std::vector<bool> in(nl.input_count());
        set_bus(nl, in, "A", a, width);
        set_bus(nl, in, "B", b, width);
        set_bit(nl, in, "S0", (s & 1) != 0);
        set_bit(nl, in, "S1", (s & 2) != 0);
        set_bit(nl, in, "M", false);
        set_bit(nl, in, "CIN", cin);
        const auto out = evaluate(nl, in);
        const bool cout = get_bit(nl, out, "COUT");
        const bool pg = get_bit(nl, out, "PG");
        const bool gg = get_bit(nl, out, "GG");
        EXPECT_EQ(cout, gg || (pg && cin));
    }
}

TEST(alu, width_bounds_checked) {
    EXPECT_THROW(make_alu(0), invalid_input);
    EXPECT_THROW(make_alu(33), invalid_input);
    EXPECT_NO_THROW(make_alu(1));
}

}  // namespace
}  // namespace wrpt
