// Tests for the objective function J_N and the confidence <-> Q mapping
// (paper formulas 8-10).

#include "opt/objective.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/error.h"

namespace wrpt {
namespace {

TEST(confidence_q, round_trip) {
    for (double c : {0.5, 0.9, 0.95, 0.999, 0.9999}) {
        const double q = confidence_to_q(c);
        EXPECT_GT(q, 0.0);
        EXPECT_NEAR(q_to_confidence(q), c, 1e-12);
    }
    EXPECT_THROW(confidence_to_q(0.0), invalid_input);
    EXPECT_THROW(confidence_to_q(1.0), invalid_input);
    EXPECT_THROW(q_to_confidence(-1.0), invalid_input);
}

TEST(objective, known_values) {
    const std::vector<double> probs{0.5, 0.25};
    EXPECT_DOUBLE_EQ(objective_jn(probs, 0.0), 2.0);  // J_0 = fault count
    EXPECT_NEAR(objective_jn(probs, 4.0),
                std::exp(-2.0) + std::exp(-1.0), 1e-12);
}

TEST(objective, monotone_decreasing_in_n) {
    const std::vector<double> probs{0.9, 0.01, 1e-6};
    double prev = objective_jn(probs, 0.0);
    for (double n : {1.0, 10.0, 1e3, 1e6, 1e9}) {
        const double j = objective_jn(probs, n);
        EXPECT_LT(j, prev);
        prev = j;
    }
}

TEST(objective, approximates_negative_log_confidence) {
    // For large N and small J, exp(-J_N) ~ exact confidence (formula 9).
    const std::vector<double> probs{0.02, 0.05, 0.07};
    const double n = 400.0;
    const double j = objective_jn(probs, n);
    const double exact = exact_confidence(probs, n);
    EXPECT_NEAR(std::exp(-j), exact, 2e-3);
}

TEST(objective, exact_confidence_edge_cases) {
    EXPECT_DOUBLE_EQ(exact_confidence(std::vector<double>{}, 10.0), 1.0);
    const std::vector<double> with_zero{0.5, 0.0};
    EXPECT_DOUBLE_EQ(exact_confidence(with_zero, 1000.0), 0.0);
    const std::vector<double> certain{1.0, 1.0};
    EXPECT_DOUBLE_EQ(exact_confidence(certain, 1.0), 1.0);
}

TEST(objective, exact_confidence_increases_with_n) {
    const std::vector<double> probs{0.1, 0.01};
    double prev = exact_confidence(probs, 1.0);
    for (double n : {10.0, 100.0, 1000.0}) {
        const double c = exact_confidence(probs, n);
        EXPECT_GT(c, prev);
        prev = c;
    }
    EXPECT_GT(prev, 0.999);
}

TEST(objective, huge_test_lengths_do_not_overflow) {
    const std::vector<double> probs{1e-11};
    const double j = objective_jn(probs, 2.0e11);  // the S2 scale of Table 1
    EXPECT_GT(j, 0.0);
    EXPECT_LT(j, 1.0);
    EXPECT_TRUE(std::isfinite(j));
}

}  // namespace
}  // namespace wrpt
