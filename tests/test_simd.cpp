// Kernel-equivalence suite for the vectorized compute paths (core/simd.h
// and friends): every SIMD kernel must be bit-identical to its scalar
// reference, on every circuit of the gen/ suite, for every dispatch mode
// (compiled-best ISA and the forced scalar fallback), for every thread
// count, and on odd-sized tails that don't fill a vector register.
//
// Under -DWRPT_FORCE_SCALAR the vector variants are compiled out and
// every check here degenerates to scalar-vs-scalar — still asserted, so
// the CI fallback leg runs the same suite.

#include "core/simd.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/circuit_view.h"
#include "exec/parallel_sort.h"
#include "exec/thread_pool.h"
#include "fault/fault.h"
#include "gen/random_circuit.h"
#include "gen/suite.h"
#include "io/weights_io.h"
#include "opt/normalize.h"
#include "prob/cop_kernels.h"
#include "prob/cop_rules.h"
#include "prob/signal_prob.h"
#include "sim/fault_sim.h"
#include "sim/logic_sim.h"
#include "sim/patterns.h"
#include "svc/request.h"
#include "svc/service.h"
#include "util/rng.h"

namespace wrpt {
namespace {

// Restore the dispatch switch even when an assertion bails out of a test.
struct scalar_guard {
    explicit scalar_guard(bool on) : prev_(simd::scalar_forced()) {
        simd::set_force_scalar(on);
    }
    ~scalar_guard() { simd::set_force_scalar(prev_); }
    scalar_guard(const scalar_guard&) = delete;
    scalar_guard& operator=(const scalar_guard&) = delete;

private:
    bool prev_;
};

// EXPECT_EQ on doubles compares values (0.0 == -0.0, NaN != NaN); the
// kernels promise bit-identity, so compare the representation.
void expect_bits_equal(const std::vector<double>& a,
                       const std::vector<double>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(std::bit_cast<std::uint64_t>(a[i]),
                  std::bit_cast<std::uint64_t>(b[i]))
            << "node " << i << ": " << a[i] << " vs " << b[i];
    }
}

weight_vector varied_weights(std::size_t inputs, std::uint64_t seed) {
    rng r(seed);
    weight_vector w(inputs);
    for (auto& x : w) x = r.next_double();
    return w;
}

// --- COP forward sweep -------------------------------------------------------

TEST(SimdDispatch, ReportsConsistentIsaAndLanes) {
    const simd::isa compiled = simd::compiled_isa();
    const simd::isa active = simd::active_isa();
    // Active is the compiled ISA or a runtime step up/down from it; the
    // lane width is 1 exactly for scalar.
    EXPECT_GE(simd::lane_width(compiled), 1u);
    EXPECT_GE(simd::lane_width(active), 1u);
    EXPECT_EQ(simd::lane_width(simd::isa::scalar), 1u);
    EXPECT_STRNE(simd::isa_name(active), "");

    scalar_guard forced(true);
    EXPECT_EQ(simd::active_isa(), simd::isa::scalar);
}

// The vectorized sweep and the scalar forward sweep agree bit-for-bit on
// every suite circuit, at uniform and at varied weights.
TEST(SimdCopSweep, BitIdenticalOnSuite) {
    for (const suite_entry& e : benchmark_suite()) {
        const netlist nl = e.build();

        circuit_view::compile_options lanes;
        lanes.lane_groups = true;
        const circuit_view grouped = circuit_view::compile(nl, lanes);
        const circuit_view plain = circuit_view::compile(nl);  // no lane groups

        for (std::uint64_t seed : {0u, 17u}) {
            const weight_vector w =
                seed == 0 ? uniform_weights(nl)
                          : varied_weights(nl.input_count(), seed);
            const std::vector<double> scalar_p =
                cop_signal_probabilities(plain, w);
            const std::vector<double> vec_p =
                cop_signal_probabilities(grouped, w);
            SCOPED_TRACE(e.name + (seed ? " varied" : " uniform"));
            expect_bits_equal(scalar_p, vec_p);
        }
    }
}

// Forcing the scalar fallback makes the vectorized entry point decline
// (leaving the output untouched), and the public API still answers the
// same probabilities through the reference sweep.
TEST(SimdCopSweep, ForcedFallbackDeclinesAndMatches) {
    const netlist nl = build_suite_circuit("c432");
    circuit_view::compile_options lanes;
    lanes.lane_groups = true;
    const circuit_view grouped = circuit_view::compile(nl, lanes);
    const weight_vector w = varied_weights(nl.input_count(), 99);

    const std::vector<double> reference = cop_signal_probabilities(grouped, w);

    scalar_guard forced(true);
    std::vector<double> p(grouped.node_count(), -1.0);
    EXPECT_FALSE(cop::forward_sweep_vectorized(grouped, w, p));
    for (double x : p) EXPECT_EQ(x, -1.0);  // untouched
    expect_bits_equal(reference, cop_signal_probabilities(grouped, w));
}

// Random circuits of many shapes: bucket sizes here are arbitrary, so the
// scalar tail (count % lanes) of every lane group gets exercised.
TEST(SimdCopSweep, OddTailsOnRandomCircuits) {
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        random_circuit_spec spec;
        spec.inputs = 5 + seed;
        spec.gates = 11 * seed + 3;  // deliberately never a lane multiple
        spec.seed = seed;
        const netlist nl = make_random_circuit(spec);

        circuit_view::compile_options lanes;
        lanes.lane_groups = true;
        const circuit_view grouped = circuit_view::compile(nl, lanes);
        const circuit_view plain = circuit_view::compile(nl);
        const weight_vector w = varied_weights(nl.input_count(), seed);

        SCOPED_TRACE(seed);
        expect_bits_equal(cop_signal_probabilities(plain, w),
                          cop_signal_probabilities(grouped, w));
    }
}

// --- batched exp(-p N) -------------------------------------------------------

TEST(SimdExpNegScale, BitIdenticalIncludingOddLengths) {
    rng r(0xabcdef);
    for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                          std::size_t{3}, std::size_t{5}, std::size_t{7},
                          std::size_t{63}, std::size_t{64}, std::size_t{65},
                          std::size_t{1000}}) {
        std::vector<double> x(n), got(n, -1.0), want(n, -1.0);
        for (auto& v : x) v = r.next_double();
        const double m = 52384.0 + static_cast<double>(n);

        for (std::size_t i = 0; i < n; ++i) want[i] = std::exp(-x[i] * m);
        simd::exp_neg_scale(x.data(), m, got.data(), n);
        SCOPED_TRACE(n);
        expect_bits_equal(want, got);

        scalar_guard forced(true);
        std::fill(got.begin(), got.end(), -1.0);
        simd::exp_neg_scale(x.data(), m, got.data(), n);
        expect_bits_equal(want, got);
    }
}

// NORMALIZE rides on exp_neg_scale; the sharded/pooled run must stay
// bit-identical to the sequential one (same fixed-order reduction).
TEST(SimdExpNegScale, NormalizeMatchesAcrossThreads) {
    rng r(7);
    std::vector<double> probs(5000);
    for (auto& p : probs) p = 1e-6 + 0.2 * r.next_double();

    const normalize_result seq = normalize_detection_probs(probs, 0.999);
    for (unsigned threads : {2u, 8u}) {
        normalize_exec ex;
        ex.pool = &shared_thread_pool();
        ex.threads = threads;
        ex.shard = 256;
        const normalize_result par =
            normalize_detection_probs(probs, 0.999, ex);
        EXPECT_EQ(std::bit_cast<std::uint64_t>(seq.test_length),
                  std::bit_cast<std::uint64_t>(par.test_length))
            << threads;
        EXPECT_EQ(seq.relevant_faults, par.relevant_faults);
        EXPECT_EQ(seq.feasible, par.feasible);
    }
}

// --- blocked PPSFP -----------------------------------------------------------

// block_simulator word w == simulator on block w, for values and for
// per-fault detection masks.
TEST(SimdBlockSim, WordsMatchSingleWordSimulator) {
    const netlist nl = build_suite_circuit("S1");
    const circuit_view cv = circuit_view::compile(nl);
    const std::vector<fault> faults = generate_full_faults(nl);

    constexpr unsigned kWords = 4;
    rng r(0x5151);
    std::vector<std::uint64_t> blocks(nl.input_count() * kWords);
    for (auto& w : blocks) w = r.next_word();

    block_simulator bsim(cv, kWords);
    bsim.simulate(blocks);

    simulator ssim(cv);
    std::vector<std::uint64_t> one(nl.input_count());
    std::vector<std::uint64_t> masks(kWords);
    for (unsigned w = 0; w < kWords; ++w) {
        for (std::size_t i = 0; i < one.size(); ++i)
            one[i] = blocks[i * kWords + w];
        ssim.simulate(one);
        for (node_id o : nl.outputs())
            ASSERT_EQ(ssim.value(o), bsim.value(o, w)) << "word " << w;
        for (std::size_t fi = 0; fi < faults.size(); fi += 7) {
            bsim.detect_masks(faults[fi], masks.data());
            ASSERT_EQ(ssim.detect_mask(faults[fi]), masks[w])
                << "fault " << fi << " word " << w;
        }
    }
}

// The full fault-simulation result — first_detected per fault AND
// patterns_applied — is invariant across block widths and thread counts,
// including budgets that are not multiples of the block size.
TEST(SimdFaultSim, BlockedAndParallelBitIdentical) {
    for (const char* name : {"S1", "c432"}) {
        const netlist nl = build_suite_circuit(name);
        const std::vector<fault> faults = generate_full_faults(nl);
        const weight_vector w = uniform_weights(nl);

        for (std::uint64_t budget : {320u, 832u}) {
            fault_sim_options ref;
            ref.max_patterns = budget;
            ref.threads = 1;
            ref.block_words = 1;
            const fault_sim_result want =
                run_weighted_fault_simulation(nl, faults, w, 0xfeed, ref);

            for (unsigned block : {1u, 4u, 8u}) {
                for (unsigned threads : {1u, 2u, 8u}) {
                    fault_sim_options o = ref;
                    o.block_words = block;
                    o.threads = threads;
                    const fault_sim_result got =
                        run_weighted_fault_simulation(nl, faults, w, 0xfeed,
                                                      o);
                    SCOPED_TRACE(std::string(name) + " B" +
                                 std::to_string(block) + " t" +
                                 std::to_string(threads));
                    EXPECT_EQ(want.patterns_applied, got.patterns_applied);
                    EXPECT_EQ(want.detected_count, got.detected_count);
                    ASSERT_EQ(want.first_detected.size(),
                              got.first_detected.size());
                    for (std::size_t i = 0; i < want.first_detected.size();
                         ++i)
                        ASSERT_EQ(want.first_detected[i],
                                  got.first_detected[i])
                            << "fault " << i;
                }
            }
        }
    }
}

// --- deterministic parallel sort ---------------------------------------------

TEST(SimdSort, MatchesStableSortWithDuplicates) {
    rng r(0x50f7);
    std::vector<double> keys(40000);
    for (auto& k : keys) k = static_cast<double>(r.next_below(97));

    std::vector<std::size_t> want(keys.size());
    for (std::size_t i = 0; i < want.size(); ++i) want[i] = i;
    std::stable_sort(want.begin(), want.end(),
                     [&](std::size_t a, std::size_t b) {
                         return keys[a] < keys[b];
                     });

    for (unsigned threads : {1u, 2u, 8u}) {
        std::vector<std::size_t> got(keys.size());
        for (std::size_t i = 0; i < got.size(); ++i) got[i] = i;
        parallel_stable_sort_indices(
            got,
            [&](std::size_t a, std::size_t b) { return keys[a] < keys[b]; },
            threads > 1 ? &shared_thread_pool() : nullptr, threads,
            /*shard=*/512);
        EXPECT_EQ(want, got) << threads;
    }
}

// sort_faults' pooled overload: identical order for every thread count,
// with duplicate probabilities and excluded p <= 0 entries in the mix.
TEST(SimdSort, SortFaultsIdenticalAcrossThreads) {
    rng r(0xdead);
    std::vector<double> probs(50000);
    for (auto& p : probs) {
        const double d = r.next_double();
        p = d < 0.03 ? 0.0 : static_cast<double>(r.next_below(211)) / 211.0;
    }

    const std::vector<std::size_t> want = sort_faults(probs);
    for (unsigned threads : {1u, 2u, 8u}) {
        normalize_exec ex;
        ex.pool = &shared_thread_pool();
        ex.threads = threads;
        EXPECT_EQ(want, sort_faults(probs, ex)) << threads;
    }
}

// --- svc stats surface -------------------------------------------------------

TEST(SimdStats, StatsResponseCarriesDispatch) {
    svc::service s;
    svc::request q;
    q.id = 1;
    q.payload = svc::stats_request{};
    const svc::response resp = s.handle(q);
    ASSERT_TRUE(resp.ok);
    const auto& st = std::get<svc::stats_response>(resp.payload);
    EXPECT_EQ(st.simd_isa, simd::isa_name(simd::active_isa()));
    EXPECT_EQ(st.simd_lanes, simd::lane_width(simd::active_isa()));
    EXPECT_GE(st.simd_lanes, 1u);
}

}  // namespace
}  // namespace wrpt
