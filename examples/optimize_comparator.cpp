// The paper's flagship experiment end to end on S1, the 24-bit comparator
// built from six SN7485-style slices:
//   1. estimate the conventional random test length (Table 1 row),
//   2. run OPTIMIZE (section 4),
//   3. print the appendix-style weight listing and write a weights file,
//   4. verify by fault simulation at 12,000 patterns (Tables 2/4).
//
//   ./build/examples/optimize_comparator [weights-out.txt]

#include <cstdio>
#include <fstream>

#include "fault/fault.h"
#include "gen/comparator.h"
#include "io/weights_io.h"
#include "opt/optimizer.h"
#include "prob/detect.h"
#include "sim/fault_sim.h"

int main(int argc, char** argv) {
    using namespace wrpt;
    const netlist nl = make_s1();
    const auto faults = generate_full_faults(nl);
    std::printf("S1: %zu inputs, %zu gates, %zu faults\n", nl.input_count(),
                nl.stats().gate_count, faults.size());

    cop_detect_estimator analysis;
    const auto conventional =
        required_test_length(nl, faults, analysis, uniform_weights(nl));
    std::printf("Table 1 row: conventional N = %.3g  (paper: 5.6e8)\n",
                conventional.test_length);

    const optimize_result opt =
        optimize_weights(nl, faults, analysis, uniform_weights(nl));
    std::printf("Table 3 row: optimized N = %.3g  (paper: 3.5e4), "
                "%zu sweeps, %zu analysis calls\n",
                opt.final_test_length, opt.history.size(), opt.analysis_calls);

    std::printf("\nOptimized input probabilities (appendix style):\n");
    for (std::size_t i = 0; i < opt.weights.size(); ++i) {
        std::printf("  %-4s %.2f", nl.node_name(nl.inputs()[i]).c_str(),
                    opt.weights[i]);
        if (i % 8 == 7) std::printf("\n");
    }
    std::printf("\n");

    if (argc > 1) {
        write_weights_file(argv[1], nl, opt.weights);
        std::printf("weights written to %s\n", argv[1]);
    }

    fault_sim_options fo;
    fo.max_patterns = 12000;
    const auto conv_sim = run_weighted_fault_simulation(
        nl, faults, uniform_weights(nl), 42, fo);
    const auto opt_sim =
        run_weighted_fault_simulation(nl, faults, opt.weights, 42, fo);
    std::printf(
        "Tables 2/4 rows: coverage at 12,000 patterns:\n"
        "  conventional %.1f%%  (paper: 80.7%%)\n"
        "  optimized    %.1f%%  (paper: 99.7%%)\n",
        conv_sim.coverage_percent(faults.size()),
        opt_sim.coverage_percent(faults.size()));
    return 0;
}
