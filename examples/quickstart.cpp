// Quickstart: build a small circuit, see why equiprobable random patterns
// struggle, compute optimized input probabilities, and check the gain.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "fault/fault.h"
#include "gen/wordlib.h"
#include "io/weights_io.h"
#include "netlist/netlist.h"
#include "opt/optimizer.h"
#include "prob/detect.h"
#include "sim/fault_sim.h"

int main() {
    using namespace wrpt;

    // A 12-bit equality comparator: the classic random-pattern-resistant
    // structure (P[A == B] = 2^-12 under equiprobable inputs).
    netlist nl("quickstart");
    const bus a = add_input_bus(nl, "A", 12);
    const bus b = add_input_bus(nl, "B", 12);
    nl.mark_output(equality(nl, a, b), "EQ");
    nl.mark_output(parity(nl, a), "PA");
    nl.validate();

    const auto faults = generate_full_faults(nl);
    std::printf("circuit: %zu gates, %zu stuck-at faults\n",
                nl.stats().gate_count, faults.size());

    // 1. How long must a conventional random test be (confidence 99.9%)?
    cop_detect_estimator analysis;
    const auto conventional =
        required_test_length(nl, faults, analysis, uniform_weights(nl));
    std::printf("conventional random test length: %.3g patterns\n",
                conventional.test_length);

    // 2. Optimize one probability per input (the paper's procedure).
    const optimize_result opt =
        optimize_weights(nl, faults, analysis, uniform_weights(nl));
    std::printf("optimized  random test length: %.3g patterns (%.0fx less)\n",
                opt.final_test_length,
                opt.initial_test_length / opt.final_test_length);

    // 3. Verify by fault simulation with a 1000-pattern budget.
    fault_sim_options fo;
    fo.max_patterns = 1000;
    const auto conv_sim = run_weighted_fault_simulation(
        nl, faults, uniform_weights(nl), 1, fo);
    const auto opt_sim =
        run_weighted_fault_simulation(nl, faults, opt.weights, 1, fo);
    std::printf("coverage at 1000 patterns: conventional %.1f%%, "
                "optimized %.1f%%\n",
                conv_sim.coverage_percent(faults.size()),
                opt_sim.coverage_percent(faults.size()));
    return 0;
}
