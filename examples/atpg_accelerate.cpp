// Section 5.2: "the optimizing procedure can also support deterministic
// test pattern generation, since the computing time of optimizing and
// simulation together is less than computing test patterns by the
// D-algorithm. Fault simulation of optimized patterns can provide nearly
// complete fault coverage in economical time."
//
// Flow: optimized random patterns with fault dropping first; PODEM only
// for the remnant; the result is a compact classified test set.
//
//   ./build/examples/atpg_accelerate

#include <cstdio>

#include "atpg/podem.h"
#include "fault/fault.h"
#include "gen/datapath.h"
#include "io/weights_io.h"
#include "opt/optimizer.h"
#include "prob/detect.h"
#include "sim/fault_sim.h"
#include "util/timer.h"

int main() {
    using namespace wrpt;
    const netlist nl = make_c7552_like();
    const auto faults = generate_full_faults(nl);
    std::printf("circuit c7552-like: %zu gates, %zu faults\n",
                nl.stats().gate_count, faults.size());

    stopwatch total;

    // Phase 1: optimize and simulate random patterns with fault dropping.
    cop_detect_estimator analysis;
    const optimize_result opt =
        optimize_weights(nl, faults, analysis, uniform_weights(nl));
    fault_sim_options fo;
    fo.max_patterns = 4096;
    const auto sim =
        run_weighted_fault_simulation(nl, faults, opt.weights, 9, fo);
    std::printf(
        "phase 1: %llu optimized random patterns detect %zu/%zu faults "
        "(%.1f%%) in %.2f s\n",
        static_cast<unsigned long long>(sim.patterns_applied),
        sim.detected_count, faults.size(),
        sim.coverage_percent(faults.size()), total.seconds());

    // For contrast: how far do conventional patterns get?
    const auto conv = run_weighted_fault_simulation(
        nl, faults, uniform_weights(nl), 9, fo);
    std::printf("         (conventional patterns: %.1f%%)\n",
                conv.coverage_percent(faults.size()));

    // Phase 2: deterministic patterns for the remnant.
    std::vector<fault> open;
    for (std::size_t i = 0; i < faults.size(); ++i)
        if (!sim.first_detected[i].has_value()) open.push_back(faults[i]);
    stopwatch phase2;
    podem_options po;
    po.backtrack_limit = 256;
    const fault_classification cls = classify_faults(nl, open, po);
    std::printf(
        "phase 2: PODEM on the %zu remaining faults: %zu tests, "
        "%zu proven redundant, %zu aborted, in %.2f s\n",
        open.size(), cls.detected, cls.redundant, cls.aborted,
        phase2.seconds());

    const std::size_t classified =
        sim.detected_count + cls.detected + cls.redundant;
    std::printf(
        "result: %zu/%zu faults classified; deterministic top-up test set "
        "has %zu patterns; total %.2f s\n",
        classified, faults.size(), cls.tests.size(), total.seconds());
    return 0;
}
