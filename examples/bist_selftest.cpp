// Weighted-random self test: the on-chip application of the optimized
// probabilities (paper abstract: "those optimized random patterns can be
// produced on the chip during self test"). An LFSR drives per-input
// AND/OR weighting networks; a MISR compacts the responses.
//
//   ./build/examples/bist_selftest

#include <cstdio>

#include "bist/session.h"
#include "fault/fault.h"
#include "gen/datapath.h"
#include "io/weights_io.h"
#include "opt/optimizer.h"
#include "opt/quantize.h"
#include "prob/detect.h"

int main() {
    using namespace wrpt;
    const netlist nl = make_c2670_like();
    const auto faults = generate_full_faults(nl);
    std::printf("circuit c2670-like: %zu gates, %zu faults\n",
                nl.stats().gate_count, faults.size());

    // Optimize, then snap to the weights a 5-stage generator realizes.
    cop_detect_estimator analysis;
    const optimize_result opt =
        optimize_weights(nl, faults, analysis, uniform_weights(nl));
    const weight_vector hw = quantize_lfsr(opt.weights, 5);
    std::printf("optimized N = %.3g; after LFSR quantization N = %.3g\n",
                opt.final_test_length,
                required_test_length(nl, faults, analysis, hw).test_length);

    bist_session_options bo;
    bo.patterns = 4096;
    bo.lfsr_degree = 32;
    bo.misr_degree = 32;
    bo.max_weight_stages = 5;

    const auto weighted = run_bist_session(nl, faults, opt.weights, bo);
    const auto uniform = run_bist_session(nl, faults, uniform_weights(nl), bo);

    std::printf(
        "\nself-test session, %llu patterns:\n"
        "  uniform LFSR:   coverage %.1f%%  signature %08llx\n"
        "  weighted LFSR:  coverage %.1f%%  signature %08llx\n"
        "  MISR aliasing probability ~ %.1e\n",
        static_cast<unsigned long long>(bo.patterns),
        uniform.coverage_percent(),
        static_cast<unsigned long long>(uniform.golden_signature),
        weighted.coverage_percent(),
        static_cast<unsigned long long>(weighted.golden_signature),
        weighted.aliasing_probability);

    std::printf("\nper-input weighting networks (first 12 inputs):\n");
    const auto taps = taps_for_weights(opt.weights, 5);
    for (std::size_t i = 0; i < 12 && i < taps.size(); ++i)
        std::printf("  %-4s target %.2f -> %u-bit %s (realized %.3f)\n",
                    nl.node_name(nl.inputs()[i]).c_str(), opt.weights[i],
                    taps[i].stages, taps[i].use_or ? "OR" : "AND",
                    taps[i].realized());
    return 0;
}
