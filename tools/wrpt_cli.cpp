// wrpt_cli — command-line driver for the library.
//
//   wrpt_cli stats    <circuit>
//   wrpt_cli lengths  <circuit> [--confidence 0.999] [--estimator cop]
//   wrpt_cli optimize <circuit> [--out weights.txt] [--estimator cop]
//                     [--threads N]
//   wrpt_cli simulate <circuit> [--weights file] [--patterns 4096]
//   wrpt_cli atpg     <circuit> [--backtracks 512]
//   wrpt_cli selftest <circuit> [--weights file] [--patterns 4096]
//   wrpt_cli batch    <dir>     [--threads N] [--stage-threads N]
//                     [--optimize 1] [--patterns 4096]
//                     [--confidence 0.999] [--max-engines N]
//   wrpt_cli serve    [-|pipe]  [--listen <port|unix:path>] [--threads N]
//                     [--confidence 0.999] [--max-engines N] [--max-cache N]
//                     [--max-views N] [--tenant-quota C[:E[:B]]]
//                     [--max-line BYTES] [--idle-timeout-ms MS]
//                     [--max-connections N] [--workers N]
//                     [--queue-depth N] [--queue-bytes BYTES]
//   wrpt_cli request  <port|unix:path> [--json '<request line>']
//                     [--connect-timeout-ms 5000]
//   wrpt_cli register <port|unix:path> --tenant T --name N
//                     (--bench TXT | --path FILE | --suite NAME)
//   wrpt_cli reload   <port|unix:path> --tenant T --name N
//                     (--bench TXT | --path FILE | --suite NAME)
//   wrpt_cli catalog  <port|unix:path> [--tenant T]
//
// <circuit> is either a .bench file path or a suite name (S1, S2, c432,
// c499, c880, c1355, c1908, c2670, c3540, c5315, c6288, c7552).
// `batch` serves every .bench file under <dir> through one svc::service:
// compile once, then run test-length / optimize / fault-sim jobs for all
// circuits concurrently on the session pool. Unloadable files are
// reported per file and skipped; the run continues and exits with 2 when
// only file loads failed, 3 when any job failed.
// `serve` is the persistent daemon: it reads one JSON request per line
// from stdin ("-", the default) or from a named pipe / file path, routes
// it through svc::service, and streams one JSON response per line to
// stdout. With --listen it instead binds a loopback TCP port or a
// unix-domain socket and serves every connection from one event-driven
// reactor thread plus a fixed worker set (--workers, default one per
// hardware thread) over the same shared service (shared result cache and
// engine pools) — the thread count never scales with connections.
// --queue-depth bounds the parsed requests that may wait per connection
// (beyond it the reactor stops reading that client: flow control);
// --queue-bytes bounds the un-drained response bytes per connection
// (a slow reader beyond it gets a refusal envelope and is dropped;
// surfaced as queue_drops in the stats response). Bad requests
// get per-request error envelopes (the process does not exit); EOF or a
// {"req":"shutdown"} request ends the loop gracefully — over sockets the
// shutdown drains: in-flight requests finish, new connections are
// refused. Input/bind failures are distinct exit codes with the errno
// string: 4 = cannot open the stdin/pipe input, 5 = cannot bind/listen.
// `request` is the matching one-shot client: it connects, sends the
// --json line (or every line read from stdin) and prints one response
// line per request.

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "atpg/compact.h"
#include "atpg/podem.h"
#include "bist/session.h"
#include "core/simd.h"
#include "exec/batch_session.h"
#include "fault/fault.h"
#include "gen/suite.h"
#include "io/bench_io.h"
#include "io/weights_io.h"
#include "opt/optimizer.h"
#include "prob/detect.h"
#include "sim/fault_sim.h"
#include "svc/server.h"
#include "svc/service.h"
#include "svc/socket.h"
#include "svc/wire.h"
#include "util/error.h"
#include "util/timer.h"

namespace {

using namespace wrpt;

struct cli_options {
    std::string command;
    std::string circuit;
    std::map<std::string, std::string> flags;

    std::string flag(const std::string& name, const std::string& fallback) const {
        auto it = flags.find(name);
        return it == flags.end() ? fallback : it->second;
    }
    double flag_double(const std::string& name, double fallback) const {
        auto it = flags.find(name);
        return it == flags.end() ? fallback : std::stod(it->second);
    }
    std::uint64_t flag_u64(const std::string& name, std::uint64_t fallback) const {
        auto it = flags.find(name);
        return it == flags.end() ? fallback : std::stoull(it->second);
    }
};

int usage();

netlist load_circuit(const std::string& spec) {
    std::ifstream probe(spec);
    if (probe.good()) return read_bench_file(spec);
    return build_suite_circuit(spec);
}

weight_vector load_weights(const cli_options& opt, const netlist& nl) {
    const std::string path = opt.flag("weights", "");
    if (path.empty()) return uniform_weights(nl);
    return read_weights_file(path, nl);
}

int cmd_stats(const cli_options& opt) {
    const netlist nl = load_circuit(opt.circuit);
    const netlist_stats st = nl.stats();
    const auto faults = generate_full_faults(nl);
    const collapsed_faults cf = collapse_faults(nl, faults);
    std::printf("circuit %s\n", nl.name().c_str());
    std::printf("  inputs %zu  outputs %zu  gates %zu  depth %zu\n",
                st.input_count, st.output_count, st.gate_count, st.depth);
    std::printf("  lines %zu  faults %zu  collapsed classes %zu\n",
                st.line_count, faults.size(), cf.class_count());
    return 0;
}

int cmd_lengths(const cli_options& opt) {
    const netlist nl = load_circuit(opt.circuit);
    const auto faults = generate_full_faults(nl);
    auto estimator = make_estimator(opt.flag("estimator", "cop"));
    const double conf = opt.flag_double("confidence", 0.999);
    const auto rep = required_test_length(nl, faults, *estimator,
                                          load_weights(opt, nl), conf);
    std::printf("confidence %.4f  estimator %s\n", conf,
                estimator->name().c_str());
    if (!rep.feasible) {
        std::printf("infeasible: %zu faults estimated undetectable\n",
                    rep.zero_prob_faults);
        return 1;
    }
    std::printf("required test length N = %.4g (hardest p_f = %.3g, "
                "%zu relevant faults)\n",
                rep.test_length, rep.hardest_probability,
                rep.relevant_faults);
    return 0;
}

int cmd_optimize(const cli_options& opt) {
    const netlist nl = load_circuit(opt.circuit);
    const auto faults = generate_full_faults(nl);
    auto estimator = make_estimator(opt.flag("estimator", "cop"));
    // --threads drives every parallel stage: batched PREPARE on pool
    // engines (set_threads) and the sharded ANALYSIS/NORMALIZE stages
    // (optimize_options::threads). Results are bit-identical for every
    // thread count.
    const unsigned threads =
        static_cast<unsigned>(opt.flag_u64("threads", 1));
    estimator->set_threads(threads);
    optimize_options oo;
    oo.threads = threads;
    oo.confidence = opt.flag_double("confidence", 0.999);
    stopwatch sw;
    const optimize_result res = optimize_weights(
        nl, faults, *estimator, load_weights(opt, nl), oo);
    std::printf("N: %.4g -> %.4g  (%.3g x) in %.2f s, %zu sweeps, "
                "%zu analyses\n",
                res.initial_test_length, res.final_test_length,
                res.initial_test_length /
                    std::max(res.final_test_length, 1.0),
                sw.seconds(), res.history.size(), res.analysis_calls);
    const std::string out = opt.flag("out", "");
    if (!out.empty()) {
        write_weights_file(out, nl, res.weights);
        std::printf("weights written to %s\n", out.c_str());
    } else {
        for (std::size_t i = 0; i < res.weights.size(); ++i)
            std::printf("%s %.2f\n", nl.node_name(nl.inputs()[i]).c_str(),
                        res.weights[i]);
    }
    return 0;
}

int cmd_simulate(const cli_options& opt) {
    const netlist nl = load_circuit(opt.circuit);
    const auto faults = generate_full_faults(nl);
    fault_sim_options fo;
    fo.max_patterns = opt.flag_u64("patterns", 4096);
    stopwatch sw;
    const auto res = run_weighted_fault_simulation(
        nl, faults, load_weights(opt, nl), opt.flag_u64("seed", 1), fo);
    std::printf("%llu patterns: %zu/%zu faults detected (%.2f%%) in %.2f s\n",
                static_cast<unsigned long long>(res.patterns_applied),
                res.detected_count, faults.size(),
                res.coverage_percent(faults.size()), sw.seconds());
    return 0;
}

int cmd_atpg(const cli_options& opt) {
    const netlist nl = load_circuit(opt.circuit);
    const auto faults = generate_full_faults(nl);
    podem_options po;
    po.backtrack_limit = opt.flag_u64("backtracks", 512);
    stopwatch sw;
    const fault_classification cls = classify_faults(nl, faults, po);
    std::printf("PODEM over %zu faults: %zu detected, %zu redundant, "
                "%zu aborted in %.2f s\n",
                faults.size(), cls.detected, cls.redundant, cls.aborted,
                sw.seconds());
    const auto compacted = compact_test_set(nl, faults, cls.tests);
    std::printf("test set: %zu patterns, %zu after compaction\n",
                cls.tests.size(), compacted.patterns.size());
    return cls.aborted == 0 ? 0 : 2;
}

int cmd_selftest(const cli_options& opt) {
    const netlist nl = load_circuit(opt.circuit);
    const auto faults = generate_full_faults(nl);
    bist_session_options bo;
    bo.patterns = opt.flag_u64("patterns", 4096);
    const auto res =
        run_bist_session(nl, faults, load_weights(opt, nl), bo);
    std::printf("self test: %llu patterns, signature %08llx, coverage "
                "%.2f%% (aliasing ~%.1e)\n",
                static_cast<unsigned long long>(res.patterns_applied),
                static_cast<unsigned long long>(res.golden_signature),
                res.coverage_percent(), res.aliasing_probability);
    return 0;
}

// `batch` rides the same unified service API as the serve daemon: file
// loads are load_circuit requests (per-file error envelopes instead of
// exceptions), the per-circuit work is two matrix requests answered
// through the result cache, and the summary reports per-file wall time
// plus the cache hit/miss split.
//
// Exit codes: 0 = clean; 2 = some files failed to load but every job of
// the loadable remainder succeeded; 3 = at least one job failed.
int cmd_batch(const cli_options& opt) {
    namespace fs = std::filesystem;
    if (!fs::is_directory(opt.circuit)) {
        std::fprintf(stderr, "batch: '%s' is not a directory\n",
                     opt.circuit.c_str());
        return 1;
    }
    std::vector<std::string> files;
    for (const auto& entry : fs::directory_iterator(opt.circuit))
        if (entry.is_regular_file() && entry.path().extension() == ".bench")
            files.push_back(entry.path().string());
    std::sort(files.begin(), files.end());
    if (files.empty()) {
        std::fprintf(stderr, "batch: no .bench files under %s\n",
                     opt.circuit.c_str());
        return 1;
    }

    svc::service::options so;
    so.threads = static_cast<unsigned>(opt.flag_u64("threads", 0));
    so.confidence = opt.flag_double("confidence", 0.999);
    so.max_engines = opt.flag_u64("max-engines", 0);
    svc::service service(so);
    stopwatch compile_sw;
    // An unreadable or corrupt .bench file fails alone: the service
    // answers its load request with an error envelope, the file is
    // reported on stderr and the rest of the directory still runs.
    std::size_t failed_files = 0;
    for (const std::string& f : files) {
        svc::request q;
        svc::load_circuit_request load;
        load.path = f;
        q.payload = std::move(load);
        const svc::response r = service.handle(q);
        if (!r.ok) {
            std::fprintf(stderr, "batch: skipping %s: %s\n", f.c_str(),
                         std::get<svc::error_response>(r.payload)
                             .message.c_str());
            ++failed_files;
        }
    }
    const double compile_s = compile_sw.seconds();
    const batch_session& session = service.session();
    if (session.circuit_count() == 0) {
        std::fprintf(stderr, "batch: no loadable .bench files under %s\n",
                     opt.circuit.c_str());
        return 1;
    }

    const bool optimize = opt.flag_u64("optimize", 1) != 0;
    // Per-job stage threads (sharded ANALYSIS/NORMALIZE inside one job);
    // default 1 because the jobs themselves fill the session pool.
    const unsigned stage_threads =
        static_cast<unsigned>(opt.flag_u64("stage-threads", 1));

    // Two matrix requests over every circuit at uniform weights: the
    // analysis kind (optimize or test_length) and the validating fault
    // simulation. Each matrix runs its jobs concurrently on the session
    // pool; repeated invocations of the same work would be cache hits.
    svc::request analysis_req;
    {
        svc::matrix_request m;
        m.kind = optimize ? svc::job_kind::optimize
                          : svc::job_kind::test_length;
        m.weight_sets = {weight_vector{}};  // uniform
        m.options.confidence = so.confidence;
        m.options.threads = stage_threads;
        m.confidence = so.confidence;
        analysis_req.payload = std::move(m);
    }
    svc::request sim_req;
    {
        svc::matrix_request m;
        m.kind = svc::job_kind::fault_sim;
        m.weight_sets = {weight_vector{}};
        m.patterns = opt.flag_u64("patterns", 4096);
        m.seed = opt.flag_u64("seed", 1);
        sim_req.payload = std::move(m);
    }
    stopwatch run_sw;
    const svc::response analysis_resp = service.handle(analysis_req);
    const svc::response sim_resp = service.handle(sim_req);
    const double run_s = run_sw.seconds();
    if (!analysis_resp.ok || !sim_resp.ok) {
        const auto& failed = !analysis_resp.ok ? analysis_resp : sim_resp;
        std::fprintf(stderr, "batch: %s\n",
                     std::get<svc::error_response>(failed.payload)
                         .message.c_str());
        return 3;
    }
    const auto& analysis =
        std::get<svc::matrix_response>(analysis_resp.payload).results;
    const auto& sims = std::get<svc::matrix_response>(sim_resp.payload).results;

    const svc::service::cache_counters cache = service.cache_stats();
    std::printf("%zu circuits compiled in %.2f s, %zu jobs in %.2f s, "
                "cache %llu hit / %llu miss\n",
                session.circuit_count(), compile_s,
                analysis.size() + sims.size(), run_s,
                static_cast<unsigned long long>(cache.hits),
                static_cast<unsigned long long>(cache.misses));
    std::size_t failed_jobs = 0;
    for (std::size_t c = 0; c < session.circuit_count(); ++c) {
        const netlist& nl = session.circuit(c);
        std::printf("%-24s inputs %4zu  faults %5zu  ", nl.name().c_str(),
                    nl.input_count(), session.faults(c).size());
        double job_ms = 0.0;
        bool job_cached = false;
        if (!analysis[c].ok) {
            ++failed_jobs;
            std::printf("FAILED: %s",
                        std::get<svc::error_response>(analysis[c].payload)
                            .message.c_str());
        } else if (optimize) {
            const auto& ra =
                std::get<svc::optimize_response>(analysis[c].payload);
            std::printf("N %.4g -> %.4g  ", ra.initial_length,
                        ra.final_length);
            job_ms += ra.elapsed_ms;
            job_cached = ra.cached;
        } else {
            const auto& ra =
                std::get<svc::test_length_response>(analysis[c].payload);
            if (ra.length.feasible)
                std::printf("N %.4g  ", ra.length.test_length);
            else
                std::printf("N infeasible  ");
            job_ms += ra.elapsed_ms;
            job_cached = ra.cached;
        }
        if (!sims[c].ok) {
            ++failed_jobs;
            std::printf("  sim FAILED: %s",
                        std::get<svc::error_response>(sims[c].payload)
                            .message.c_str());
        } else {
            const auto& rs =
                std::get<svc::fault_sim_response>(sims[c].payload);
            std::printf("coverage %.2f%% @ %llu patterns", rs.coverage,
                        static_cast<unsigned long long>(rs.patterns));
            job_ms += rs.elapsed_ms;
        }
        std::printf("  [%.1f ms%s]\n", job_ms, job_cached ? ", cached" : "");
    }
    if (failed_jobs > 0) {
        std::fprintf(stderr, "batch: %zu job(s) failed\n", failed_jobs);
        return 3;
    }
    if (failed_files > 0) {
        std::fprintf(stderr, "batch: %zu file(s) failed to load\n",
                     failed_files);
        return 2;
    }
    return 0;
}

// Distinct, scriptable failure exit codes for the daemon: supervisors
// (and the CI smoke) tell "the input path is bad" apart from "the socket
// cannot be bound" without parsing stderr.
constexpr int exit_serve_open_failure = 4;
constexpr int exit_serve_bind_failure = 5;

// --tenant-quota C[:E[:B]]: per-tenant registered-circuit cap, engine
// cap per compiled view, and result-cache byte cap; any omitted or zero
// field stays unbounded.
svc::registry::tenant_quota parse_tenant_quota(const std::string& spec) {
    svc::registry::tenant_quota q;
    if (spec.empty()) return q;
    std::istringstream in(spec);
    std::string part;
    for (int field = 0; std::getline(in, part, ':'); ++field) {
        const std::uint64_t v = part.empty() ? 0 : std::stoull(part);
        if (field == 0)
            q.max_circuits = static_cast<std::size_t>(v);
        else if (field == 1)
            q.max_engines = static_cast<std::size_t>(v);
        else if (field == 2)
            q.max_cache_bytes = v;
        else
            throw wrpt::error("serve: --tenant-quota takes at most three "
                              "':'-separated fields (circuits:engines:"
                              "cache-bytes)");
    }
    return q;
}

// The persistent daemon: one JSON request per line in, one JSON response
// per line out (flushed per response, so pipes see answers immediately).
// Request-level failures — malformed JSON, unknown kinds, bad handles —
// become error envelopes; only EOF or a shutdown request ends the loop.
// With --listen the same sessions run one-per-connection on a loopback
// TCP port or unix-domain socket (svc::server), sharing one service.
int cmd_serve(const cli_options& opt) {
    svc::service::options so;
    so.threads = static_cast<unsigned>(opt.flag_u64("threads", 0));
    so.confidence = opt.flag_double("confidence", 0.999);
    so.max_engines = opt.flag_u64("max-engines", 0);
    so.max_cache_entries = opt.flag_u64("max-cache", 0);
    so.max_views = opt.flag_u64("max-views", 0);
    so.tenant_quota = parse_tenant_quota(opt.flag("tenant-quota", ""));

    // Startup banner on stderr (stdout stays a pure response stream):
    // which vector ISA the compute kernels dispatch to, so daemon logs
    // pin down the hardware behind every timing, plus the registry caps
    // behind every quota refusal and view eviction (0 = unbounded).
    const simd::isa active = simd::active_isa();
    std::fprintf(stderr, "serve: simd %s x%u\n", simd::isa_name(active),
                 simd::lane_width(active));
    std::fprintf(stderr,
                 "serve: registry max-views %zu, tenant quota %zu circuits "
                 "/ %zu engines / %llu cache bytes\n",
                 so.max_views, so.tenant_quota.max_circuits,
                 so.tenant_quota.max_engines,
                 static_cast<unsigned long long>(
                     so.tenant_quota.max_cache_bytes));

    const std::string listen = opt.flag("listen", "");
    if (!listen.empty()) {
        // A malformed spec is an argument typo, not a bind failure: keep
        // exit 5 for "the endpoint itself cannot be bound".
        svc::endpoint ep;
        try {
            ep = svc::endpoint::parse(listen);
        } catch (const svc::socket_error& e) {
            std::fprintf(stderr, "serve: %s\n", e.what());
            return usage();
        }
        try {
            svc::server::options vo;
            vo.max_line_bytes = opt.flag_u64("max-line", vo.max_line_bytes);
            vo.idle_timeout_ms = static_cast<int>(
                opt.flag_u64("idle-timeout-ms", 0));
            vo.send_timeout_ms = static_cast<int>(opt.flag_u64(
                "send-timeout-ms",
                static_cast<std::uint64_t>(vo.send_timeout_ms)));
            vo.max_connections = opt.flag_u64("max-connections", 0);
            vo.workers =
                static_cast<unsigned>(opt.flag_u64("workers", 0));
            vo.max_pending_requests =
                opt.flag_u64("queue-depth", vo.max_pending_requests);
            vo.max_queue_bytes =
                opt.flag_u64("queue-bytes", vo.max_queue_bytes);
            svc::service service(so);
            svc::server server(service, ep, vo);
            // The resolved endpoint (ephemeral TCP ports included) goes to
            // stderr so stdout stays a pure response stream in pipe mode
            // and scripts can scrape the port.
            std::fprintf(stderr, "serve: listening on %s\n",
                         server.where().describe().c_str());
            std::fprintf(stderr, "serve: reactor + %zu workers\n",
                         server.stats().workers);
            server.wait();  // returns once a shutdown request drained us
            return 0;
        } catch (const svc::socket_error& e) {
            std::fprintf(stderr, "serve: %s\n", e.what());
            return exit_serve_bind_failure;
        }
    }

    std::ifstream file;
    std::istream* in = &std::cin;
    if (opt.circuit != "-") {
        errno = 0;
        file.open(opt.circuit);
        if (!file.good()) {
            // Surface the errno string — "exits silently" under shells
            // that swallow a bare failure made unwritable pipe paths
            // undebuggable.
            std::fprintf(stderr, "serve: cannot open '%s': %s\n",
                         opt.circuit.c_str(),
                         errno != 0 ? std::strerror(errno) : "open failed");
            return exit_serve_open_failure;
        }
        in = &file;
    }
    svc::service service(so);

    std::string line;
    while (std::getline(*in, line)) {
        if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
        svc::response r;
        bool shutdown = false;
        try {
            const svc::request q = svc::decode_request(line);
            shutdown = q.kind() == svc::request_kind::shutdown;
            r = service.handle(q);
        } catch (const std::exception& e) {
            r = svc::make_error(svc::extract_id(line), e.what());
        }
        const std::string encoded = svc::encode(r);
        std::fwrite(encoded.data(), 1, encoded.size(), stdout);
        std::fputc('\n', stdout);
        std::fflush(stdout);
        if (shutdown) break;
    }
    return 0;
}

// One-shot client for a socket daemon: send --json (or each stdin line)
// over one connection, print one response line per request. The bounded
// connect retry absorbs the daemon's startup race in scripts.
int cmd_request(const cli_options& opt) {
    try {
        const svc::endpoint ep = svc::endpoint::parse(opt.circuit);
        svc::client client(
            ep, static_cast<int>(opt.flag_u64("connect-timeout-ms", 5000)));
        const std::string one = opt.flag("json", "");
        std::istringstream single(one);
        std::istream* in =
            one.empty() ? static_cast<std::istream*>(&std::cin) : &single;
        std::string line;
        while (std::getline(*in, line)) {
            if (line.find_first_not_of(" \t\r") == std::string::npos)
                continue;
            client.send_line(line);
            std::string resp;
            if (client.recv_line(resp) != svc::line_status::ok) {
                std::fprintf(stderr,
                             "request: server closed before answering\n");
                return 1;
            }
            std::fwrite(resp.data(), 1, resp.size(), stdout);
            std::fputc('\n', stdout);
            std::fflush(stdout);
        }
        return 0;
    } catch (const svc::socket_error& e) {
        std::fprintf(stderr, "request: %s\n", e.what());
        return 1;
    }
}

// One round trip to a daemon with a typed registry request; the raw
// response line is printed as-is (the JSON envelope is the scriptable
// interface), and the exit code mirrors the envelope's ok flag.
int registry_roundtrip(const cli_options& opt, svc::request q) {
    try {
        const svc::endpoint ep = svc::endpoint::parse(opt.circuit);
        svc::client client(
            ep, static_cast<int>(opt.flag_u64("connect-timeout-ms", 5000)));
        client.send_line(svc::encode(q));
        std::string resp;
        if (client.recv_line(resp) != svc::line_status::ok) {
            std::fprintf(stderr, "%s: server closed before answering\n",
                         opt.command.c_str());
            return 1;
        }
        std::fwrite(resp.data(), 1, resp.size(), stdout);
        std::fputc('\n', stdout);
        std::fflush(stdout);
        const svc::response r = svc::decode_response(resp);
        return r.ok ? 0 : 1;
    } catch (const svc::socket_error& e) {
        std::fprintf(stderr, "%s: %s\n", opt.command.c_str(), e.what());
        return 1;
    }
}

// `register` / `reload`: name a circuit "tenant/name" on a running
// daemon. The source flags mirror load_circuit's (--bench inline text,
// --path a .bench file, --suite a generator name); --path is read here,
// client-side, so the daemon never needs the client's filesystem.
int cmd_register(const cli_options& opt, bool reload) {
    svc::request q;
    q.id = opt.flag_u64("id", 0);
    const std::string path = opt.flag("path", "");
    std::string bench = opt.flag("bench", "");
    if (!path.empty()) {
        std::ifstream file(path);
        if (!file.good())
            throw wrpt::error(opt.command + ": cannot open '" + path + "'");
        std::ostringstream text;
        text << file.rdbuf();
        bench = text.str();
    }
    if (reload) {
        svc::reload_circuit_request p;
        p.tenant = opt.flag("tenant", "");
        p.name = opt.flag("name", "");
        p.bench = std::move(bench);
        p.suite = opt.flag("suite", "");
        q.payload = std::move(p);
    } else {
        svc::register_circuit_request p;
        p.tenant = opt.flag("tenant", "");
        p.name = opt.flag("name", "");
        p.bench = std::move(bench);
        p.suite = opt.flag("suite", "");
        q.payload = std::move(p);
    }
    return registry_roundtrip(opt, std::move(q));
}

// `catalog`: list a daemon's registered circuits, optionally filtered to
// one tenant.
int cmd_catalog(const cli_options& opt) {
    svc::request q;
    q.id = opt.flag_u64("id", 0);
    svc::list_circuits_request p;
    p.tenant = opt.flag("tenant", "");
    q.payload = std::move(p);
    return registry_roundtrip(opt, std::move(q));
}

int usage() {
    std::fprintf(
        stderr,
        "usage: wrpt_cli <stats|lengths|optimize|simulate|atpg|selftest|"
        "batch|serve|request|register|reload|catalog> "
        "<circuit|dir|-|endpoint> [--flag value]...\n"
        "  circuit: .bench file or suite name (S1, S2, c432...c7552)\n"
        "  serve reads JSON-lines requests from stdin (-) or a pipe path,\n"
        "    or --listen <port|unix:path> accepts concurrent connections\n"
        "    on one reactor thread + a fixed --workers pool\n"
        "    (exit 4 = input open failure, 5 = socket bind failure)\n"
        "  request <port|unix:path> sends --json or stdin lines to a "
        "daemon\n"
        "  register/reload <port|unix:path> --tenant T --name N with one "
        "of --bench/--path/--suite; catalog <port|unix:path> [--tenant T]\n"
        "  flags: --confidence --estimator --weights --out --patterns "
        "--seed --backtracks --threads --stage-threads --optimize "
        "--max-engines --max-cache --max-views --tenant-quota --listen "
        "--max-line --idle-timeout-ms "
        "--send-timeout-ms --max-connections --workers --queue-depth "
        "--queue-bytes --json --connect-timeout-ms --tenant --name "
        "--bench --path --suite\n");
    return 64;
}

}  // namespace

int main(int argc, char** argv) {
    cli_options opt;
    if (argc < 2) return usage();
    opt.command = argv[1];
    int flag_start;
    if (opt.command == "serve" &&
        (argc == 2 || std::strncmp(argv[2], "--", 2) == 0)) {
        // serve's positional is optional: `serve --threads 1` reads
        // stdin, same as `serve - --threads 1`.
        opt.circuit = "-";
        flag_start = 2;
    } else {
        if (argc < 3) return usage();
        opt.circuit = argv[2];
        flag_start = 3;
    }
    for (int i = flag_start; i + 1 < argc; i += 2) {
        const char* name = argv[i];
        if (std::strncmp(name, "--", 2) != 0) return usage();
        opt.flags[name + 2] = argv[i + 1];
    }
    try {
        if (opt.command == "stats") return cmd_stats(opt);
        if (opt.command == "lengths") return cmd_lengths(opt);
        if (opt.command == "optimize") return cmd_optimize(opt);
        if (opt.command == "simulate") return cmd_simulate(opt);
        if (opt.command == "atpg") return cmd_atpg(opt);
        if (opt.command == "selftest") return cmd_selftest(opt);
        if (opt.command == "batch") return cmd_batch(opt);
        if (opt.command == "serve") return cmd_serve(opt);
        if (opt.command == "request") return cmd_request(opt);
        if (opt.command == "register") return cmd_register(opt, false);
        if (opt.command == "reload") return cmd_register(opt, true);
        if (opt.command == "catalog") return cmd_catalog(opt);
        return usage();
    } catch (const wrpt::error& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
