// wrpt_cli — command-line driver for the library.
//
//   wrpt_cli stats    <circuit>
//   wrpt_cli lengths  <circuit> [--confidence 0.999] [--estimator cop]
//   wrpt_cli optimize <circuit> [--out weights.txt] [--estimator cop]
//                     [--threads N]
//   wrpt_cli simulate <circuit> [--weights file] [--patterns 4096]
//   wrpt_cli atpg     <circuit> [--backtracks 512]
//   wrpt_cli selftest <circuit> [--weights file] [--patterns 4096]
//   wrpt_cli batch    <dir>     [--threads N] [--stage-threads N]
//                     [--optimize 1] [--patterns 4096]
//                     [--confidence 0.999]
//
// <circuit> is either a .bench file path or a suite name (S1, S2, c432,
// c499, c880, c1355, c1908, c2670, c3540, c5315, c6288, c7552).
// `batch` serves every .bench file under <dir> through one batch_session:
// compile once, then run test-length / optimize / fault-sim jobs for all
// circuits concurrently on the session pool. Unloadable files are
// reported per file and skipped; the run continues and exits non-zero.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "atpg/compact.h"
#include "atpg/podem.h"
#include "bist/session.h"
#include "exec/batch_session.h"
#include "fault/fault.h"
#include "gen/suite.h"
#include "io/bench_io.h"
#include "io/weights_io.h"
#include "opt/optimizer.h"
#include "prob/detect.h"
#include "sim/fault_sim.h"
#include "util/error.h"
#include "util/timer.h"

namespace {

using namespace wrpt;

struct cli_options {
    std::string command;
    std::string circuit;
    std::map<std::string, std::string> flags;

    std::string flag(const std::string& name, const std::string& fallback) const {
        auto it = flags.find(name);
        return it == flags.end() ? fallback : it->second;
    }
    double flag_double(const std::string& name, double fallback) const {
        auto it = flags.find(name);
        return it == flags.end() ? fallback : std::stod(it->second);
    }
    std::uint64_t flag_u64(const std::string& name, std::uint64_t fallback) const {
        auto it = flags.find(name);
        return it == flags.end() ? fallback : std::stoull(it->second);
    }
};

netlist load_circuit(const std::string& spec) {
    std::ifstream probe(spec);
    if (probe.good()) return read_bench_file(spec);
    return build_suite_circuit(spec);
}

weight_vector load_weights(const cli_options& opt, const netlist& nl) {
    const std::string path = opt.flag("weights", "");
    if (path.empty()) return uniform_weights(nl);
    return read_weights_file(path, nl);
}

int cmd_stats(const cli_options& opt) {
    const netlist nl = load_circuit(opt.circuit);
    const netlist_stats st = nl.stats();
    const auto faults = generate_full_faults(nl);
    const collapsed_faults cf = collapse_faults(nl, faults);
    std::printf("circuit %s\n", nl.name().c_str());
    std::printf("  inputs %zu  outputs %zu  gates %zu  depth %zu\n",
                st.input_count, st.output_count, st.gate_count, st.depth);
    std::printf("  lines %zu  faults %zu  collapsed classes %zu\n",
                st.line_count, faults.size(), cf.class_count());
    return 0;
}

int cmd_lengths(const cli_options& opt) {
    const netlist nl = load_circuit(opt.circuit);
    const auto faults = generate_full_faults(nl);
    auto estimator = make_estimator(opt.flag("estimator", "cop"));
    const double conf = opt.flag_double("confidence", 0.999);
    const auto rep = required_test_length(nl, faults, *estimator,
                                          load_weights(opt, nl), conf);
    std::printf("confidence %.4f  estimator %s\n", conf,
                estimator->name().c_str());
    if (!rep.feasible) {
        std::printf("infeasible: %zu faults estimated undetectable\n",
                    rep.zero_prob_faults);
        return 1;
    }
    std::printf("required test length N = %.4g (hardest p_f = %.3g, "
                "%zu relevant faults)\n",
                rep.test_length, rep.hardest_probability,
                rep.relevant_faults);
    return 0;
}

int cmd_optimize(const cli_options& opt) {
    const netlist nl = load_circuit(opt.circuit);
    const auto faults = generate_full_faults(nl);
    auto estimator = make_estimator(opt.flag("estimator", "cop"));
    // --threads drives every parallel stage: batched PREPARE on pool
    // engines (set_threads) and the sharded ANALYSIS/NORMALIZE stages
    // (optimize_options::threads). Results are bit-identical for every
    // thread count.
    const unsigned threads =
        static_cast<unsigned>(opt.flag_u64("threads", 1));
    estimator->set_threads(threads);
    optimize_options oo;
    oo.threads = threads;
    oo.confidence = opt.flag_double("confidence", 0.999);
    stopwatch sw;
    const optimize_result res = optimize_weights(
        nl, faults, *estimator, load_weights(opt, nl), oo);
    std::printf("N: %.4g -> %.4g  (%.3g x) in %.2f s, %zu sweeps, "
                "%zu analyses\n",
                res.initial_test_length, res.final_test_length,
                res.initial_test_length /
                    std::max(res.final_test_length, 1.0),
                sw.seconds(), res.history.size(), res.analysis_calls);
    const std::string out = opt.flag("out", "");
    if (!out.empty()) {
        write_weights_file(out, nl, res.weights);
        std::printf("weights written to %s\n", out.c_str());
    } else {
        for (std::size_t i = 0; i < res.weights.size(); ++i)
            std::printf("%s %.2f\n", nl.node_name(nl.inputs()[i]).c_str(),
                        res.weights[i]);
    }
    return 0;
}

int cmd_simulate(const cli_options& opt) {
    const netlist nl = load_circuit(opt.circuit);
    const auto faults = generate_full_faults(nl);
    fault_sim_options fo;
    fo.max_patterns = opt.flag_u64("patterns", 4096);
    stopwatch sw;
    const auto res = run_weighted_fault_simulation(
        nl, faults, load_weights(opt, nl), opt.flag_u64("seed", 1), fo);
    std::printf("%llu patterns: %zu/%zu faults detected (%.2f%%) in %.2f s\n",
                static_cast<unsigned long long>(res.patterns_applied),
                res.detected_count, faults.size(),
                res.coverage_percent(faults.size()), sw.seconds());
    return 0;
}

int cmd_atpg(const cli_options& opt) {
    const netlist nl = load_circuit(opt.circuit);
    const auto faults = generate_full_faults(nl);
    podem_options po;
    po.backtrack_limit = opt.flag_u64("backtracks", 512);
    stopwatch sw;
    const fault_classification cls = classify_faults(nl, faults, po);
    std::printf("PODEM over %zu faults: %zu detected, %zu redundant, "
                "%zu aborted in %.2f s\n",
                faults.size(), cls.detected, cls.redundant, cls.aborted,
                sw.seconds());
    const auto compacted = compact_test_set(nl, faults, cls.tests);
    std::printf("test set: %zu patterns, %zu after compaction\n",
                cls.tests.size(), compacted.patterns.size());
    return cls.aborted == 0 ? 0 : 2;
}

int cmd_selftest(const cli_options& opt) {
    const netlist nl = load_circuit(opt.circuit);
    const auto faults = generate_full_faults(nl);
    bist_session_options bo;
    bo.patterns = opt.flag_u64("patterns", 4096);
    const auto res =
        run_bist_session(nl, faults, load_weights(opt, nl), bo);
    std::printf("self test: %llu patterns, signature %08llx, coverage "
                "%.2f%% (aliasing ~%.1e)\n",
                static_cast<unsigned long long>(res.patterns_applied),
                static_cast<unsigned long long>(res.golden_signature),
                res.coverage_percent(), res.aliasing_probability);
    return 0;
}

int cmd_batch(const cli_options& opt) {
    namespace fs = std::filesystem;
    if (!fs::is_directory(opt.circuit)) {
        std::fprintf(stderr, "batch: '%s' is not a directory\n",
                     opt.circuit.c_str());
        return 1;
    }
    std::vector<std::string> files;
    for (const auto& entry : fs::directory_iterator(opt.circuit))
        if (entry.is_regular_file() && entry.path().extension() == ".bench")
            files.push_back(entry.path().string());
    std::sort(files.begin(), files.end());
    if (files.empty()) {
        std::fprintf(stderr, "batch: no .bench files under %s\n",
                     opt.circuit.c_str());
        return 1;
    }

    batch_session::options so;
    so.threads = static_cast<unsigned>(opt.flag_u64("threads", 0));
    so.confidence = opt.flag_double("confidence", 0.999);
    batch_session session(so);
    stopwatch compile_sw;
    // An unreadable or corrupt .bench file fails alone: it is reported
    // per file on stderr and the rest of the directory still runs; the
    // exit code then flags the partial failure.
    std::size_t failed_files = 0;
    for (const std::string& f : files) {
        try {
            session.add_circuit_file(f);
        } catch (const std::exception& e) {
            std::fprintf(stderr, "batch: skipping %s: %s\n", f.c_str(),
                         e.what());
            ++failed_files;
        }
    }
    const double compile_s = compile_sw.seconds();
    if (session.circuit_count() == 0) {
        std::fprintf(stderr, "batch: no loadable .bench files under %s\n",
                     opt.circuit.c_str());
        return 1;
    }

    const bool optimize = opt.flag_u64("optimize", 1) != 0;
    // Per-job stage threads (sharded ANALYSIS/NORMALIZE inside one job);
    // default 1 because the jobs themselves fill the session pool.
    const unsigned stage_threads =
        static_cast<unsigned>(opt.flag_u64("stage-threads", 1));
    std::vector<batch_session::job> jobs;
    for (std::size_t c = 0; c < session.circuit_count(); ++c) {
        batch_session::job j;
        j.circuit = c;
        j.kind = optimize ? batch_session::job_kind::optimize
                          : batch_session::job_kind::test_length;
        j.opt.confidence = so.confidence;
        j.opt.threads = stage_threads;
        jobs.push_back(j);

        batch_session::job s;
        s.circuit = c;
        s.kind = batch_session::job_kind::fault_sim;
        s.patterns = opt.flag_u64("patterns", 4096);
        s.seed = opt.flag_u64("seed", 1);
        jobs.push_back(s);
    }
    stopwatch run_sw;
    const auto results = session.run(jobs);
    const double run_s = run_sw.seconds();

    std::printf("%zu circuits compiled in %.2f s, %zu jobs in %.2f s\n",
                session.circuit_count(), compile_s, jobs.size(), run_s);
    for (std::size_t c = 0; c < session.circuit_count(); ++c) {
        const auto& ra = results[2 * c];
        const auto& rs = results[2 * c + 1];
        const netlist& nl = session.circuit(c);
        std::printf("%-24s rev %llu  inputs %4zu  faults %5zu  ",
                    nl.name().c_str(),
                    static_cast<unsigned long long>(ra.revision),
                    nl.input_count(), session.faults(c).size());
        if (optimize)
            std::printf("N %.4g -> %.4g  ",
                        ra.optimized.initial_test_length,
                        ra.optimized.final_test_length);
        else if (ra.length.feasible)
            std::printf("N %.4g  ", ra.length.test_length);
        else
            std::printf("N infeasible  ");
        std::printf("coverage %.2f%% @ %llu patterns\n", rs.coverage_percent,
                    static_cast<unsigned long long>(rs.patterns_applied));
    }
    if (failed_files > 0) {
        std::fprintf(stderr, "batch: %zu file(s) failed to load\n",
                     failed_files);
        return 1;
    }
    return 0;
}

int usage() {
    std::fprintf(
        stderr,
        "usage: wrpt_cli <stats|lengths|optimize|simulate|atpg|selftest|"
        "batch> <circuit|dir> [--flag value]...\n"
        "  circuit: .bench file or suite name (S1, S2, c432...c7552)\n"
        "  flags: --confidence --estimator --weights --out --patterns "
        "--seed --backtracks --threads --stage-threads --optimize\n");
    return 64;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 3) return usage();
    cli_options opt;
    opt.command = argv[1];
    opt.circuit = argv[2];
    for (int i = 3; i + 1 < argc; i += 2) {
        const char* name = argv[i];
        if (std::strncmp(name, "--", 2) != 0) return usage();
        opt.flags[name + 2] = argv[i + 1];
    }
    try {
        if (opt.command == "stats") return cmd_stats(opt);
        if (opt.command == "lengths") return cmd_lengths(opt);
        if (opt.command == "optimize") return cmd_optimize(opt);
        if (opt.command == "simulate") return cmd_simulate(opt);
        if (opt.command == "atpg") return cmd_atpg(opt);
        if (opt.command == "selftest") return cmd_selftest(opt);
        if (opt.command == "batch") return cmd_batch(opt);
        return usage();
    } catch (const wrpt::error& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
