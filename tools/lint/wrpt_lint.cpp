// wrpt_lint — the repo's own invariant checker.
//
// Enforces project rules no off-the-shelf tool knows, on top of a small
// scanner that understands C++ comments, string/char literals (including
// raw strings) and #include lines — so a rule never fires on prose or
// string contents, only on code:
//
//   dense-map     hot dirs (svc/, exec/, core/) use util/dense_map.h for
//                 integer-keyed tables, not std::unordered_map/std::map.
//   determinism   deterministic kernels (opt/, prob/, sim/,
//                 exec/parallel_sort.h) must not call rand()/srand(),
//                 use std::random_device or system_clock, or iterate an
//                 unordered container (iteration order would leak into
//                 results; lookup-only unordered maps are fine).
//   blocking-io   raw blocking ::send(/::recv(/::connect( calls live
//                 only in svc/socket.cpp — everything above speaks the
//                 stream/listener wrappers (the reactor requires
//                 non-blocking I/O throughout).
//   raw-mutex     synchronization primitives come from util/sync.h
//                 (wrpt::mutex & friends carry the thread-safety
//                 annotations); raw std::mutex/locks/condition_variable
//                 and their headers are forbidden elsewhere.
//
// Escape hatch: `// wrpt-lint: allow(<rule>[,<rule>...])` on the same
// line, or on an immediately preceding comment-only line, suppresses the
// named rule(s) there — pair it with a reason, reviewers read it.
//
// Usage:  wrpt_lint [--list-rules] [--stats] <path>...
// Paths may be files or directories (recursed over .h/.hpp/.cpp/.cc).
// Exit codes: 0 clean, 1 violations found, 2 usage/IO error.
//
// Directory recursion prunes the linter's own violation corpus (paths
// containing both a `lint` and a `fixtures` component), so the repo-wide
// scan stays clean while the fixtures stay deliberately dirty; the
// fixture test driver runs from tests/lint/fixtures with relative paths,
// which dodges the prune.
//
// Dependency-free by design (standard library only): it builds and runs
// before anything else in the tree does, on any toolchain CI throws at
// it, and its own fixtures (tests/lint/) pin the diagnostics as goldens.

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

// --- rule table -------------------------------------------------------------

struct rule_info {
    const char* name;
    const char* summary;
};

constexpr rule_info kRules[] = {
    {"dense-map",
     "hot dirs (svc/, exec/, core/) use util/dense_map.h, not "
     "std::unordered_map/std::map"},
    {"determinism",
     "deterministic kernels (opt/, prob/, sim/, exec/parallel_sort.h) must "
     "not call rand/srand, use std::random_device/system_clock, or iterate "
     "unordered containers"},
    {"blocking-io",
     "raw blocking ::send(/::recv(/::connect( only inside svc/socket.cpp"},
    {"raw-mutex",
     "synchronization primitives come from util/sync.h, not raw std::mutex "
     "and friends"},
};

constexpr std::size_t kRuleCount = sizeof(kRules) / sizeof(kRules[0]);

struct violation {
    std::string path;
    std::size_t line = 0;
    std::string rule;
    std::string message;
};

// --- source scanner ---------------------------------------------------------

/// One source line split into what the compiler sees (`code`, with
/// string/char literal contents blanked to spaces) and what the reader
/// sees (`comment`, the concatenated comment text).
struct scanned_line {
    std::string code;
    std::string comment;
};

bool is_ident(char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_';
}

/// Split a translation unit into per-line code/comment channels. Tracks
/// line comments, block comments (multi-line), "..." and '...' literals
/// with escapes, and R"delim(...)delim" raw strings, so rule matching
/// never fires inside a literal or a comment.
std::vector<scanned_line> scan_source(const std::string& text) {
    std::vector<scanned_line> lines(1);
    enum class st { code, line_comment, block_comment, dquote, squote, raw };
    st state = st::code;
    std::string raw_close;  // )delim" of the active raw string
    const std::size_t n = text.size();
    for (std::size_t i = 0; i < n; ++i) {
        const char c = text[i];
        if (c == '\n') {
            if (state == st::line_comment) state = st::code;
            // Unterminated quote at end of line: recover rather than
            // poison the rest of the file (the compiler errors anyway).
            if (state == st::dquote || state == st::squote) state = st::code;
            lines.emplace_back();
            continue;
        }
        scanned_line& out = lines.back();
        switch (state) {
            case st::code:
                if (c == '/' && i + 1 < n && text[i + 1] == '/') {
                    state = st::line_comment;
                    ++i;
                } else if (c == '/' && i + 1 < n && text[i + 1] == '*') {
                    state = st::block_comment;
                    ++i;
                } else if (c == '"') {
                    if (i > 0 && text[i - 1] == 'R') {
                        // R"delim( — find the delimiter, remember )delim"
                        std::size_t j = i + 1;
                        while (j < n && text[j] != '(') ++j;
                        raw_close =
                            ")" + text.substr(i + 1, j - i - 1) + "\"";
                        state = st::raw;
                        out.code += '"';
                        i = j;  // skip past the opening '('
                    } else {
                        state = st::dquote;
                        out.code += '"';
                    }
                } else if (c == '\'') {
                    // Only a char literal when not a digit separator
                    // (1'000'000) — separators sit between digits.
                    const bool separator =
                        i > 0 && is_ident(text[i - 1]) && i + 1 < n &&
                        is_ident(text[i + 1]);
                    if (!separator) state = st::squote;
                    out.code += '\'';
                } else {
                    out.code += c;
                }
                break;
            case st::line_comment:
                out.comment += c;
                break;
            case st::block_comment:
                if (c == '*' && i + 1 < n && text[i + 1] == '/') {
                    state = st::code;
                    ++i;
                } else {
                    out.comment += c;
                }
                break;
            case st::dquote:
                if (c == '\\' && i + 1 < n) {
                    ++i;
                    out.code += "  ";
                } else if (c == '"') {
                    state = st::code;
                    out.code += '"';
                } else {
                    out.code += ' ';
                }
                break;
            case st::squote:
                if (c == '\\' && i + 1 < n) {
                    ++i;
                    out.code += "  ";
                } else if (c == '\'') {
                    state = st::code;
                    out.code += '\'';
                } else {
                    out.code += ' ';
                }
                break;
            case st::raw:
                if (c == ')' &&
                    text.compare(i, raw_close.size(), raw_close) == 0) {
                    i += raw_close.size() - 1;
                    state = st::code;
                    out.code += '"';
                } else {
                    out.code += ' ';
                }
                break;
        }
    }
    return lines;
}

// --- allow directives -------------------------------------------------------

/// Rules suppressed on each line: `wrpt-lint: allow(a,b)` in a comment
/// applies to its own line; a comment-only line extends its allows to
/// the next line.
std::vector<std::set<std::string>> collect_allows(
    const std::vector<scanned_line>& lines) {
    std::vector<std::set<std::string>> allows(lines.size());
    for (std::size_t li = 0; li < lines.size(); ++li) {
        const std::string& c = lines[li].comment;
        std::size_t pos = 0;
        while ((pos = c.find("wrpt-lint:", pos)) != std::string::npos) {
            pos += 10;
            const std::size_t open = c.find("allow(", pos);
            if (open == std::string::npos) break;
            const std::size_t close = c.find(')', open);
            if (close == std::string::npos) break;
            std::string list = c.substr(open + 6, close - open - 6);
            std::string name;
            std::stringstream ss(list);
            while (std::getline(ss, name, ',')) {
                const std::size_t b = name.find_first_not_of(" \t");
                const std::size_t e = name.find_last_not_of(" \t");
                if (b != std::string::npos)
                    allows[li].insert(name.substr(b, e - b + 1));
            }
            pos = close;
        }
    }
    return allows;
}

bool line_is_comment_only(const scanned_line& l) {
    return l.code.find_first_not_of(" \t") == std::string::npos;
}

// --- path scoping -----------------------------------------------------------

std::vector<std::string> path_components(const std::string& path) {
    std::vector<std::string> comps;
    for (const auto& part : fs::path(path))
        if (part != "." && part != "/" && !part.empty())
            comps.push_back(part.string());
    return comps;
}

bool has_component(const std::vector<std::string>& comps,
                   const std::string& name) {
    return std::find(comps.begin(), comps.end(), name) != comps.end();
}

bool ends_with(const std::vector<std::string>& comps, const char* dir,
               const char* file) {
    return comps.size() >= 2 && comps[comps.size() - 2] == dir &&
           comps.back() == file;
}

// --- token matching ---------------------------------------------------------

/// Occurrences of `token` in `code` with identifier boundaries on both
/// sides. `qualified_ok`: also accept a ':' immediately before (so
/// "system_clock" matches inside std::chrono::system_clock).
std::vector<std::size_t> find_token(const std::string& code,
                                    const std::string& token,
                                    bool qualified_ok = false) {
    std::vector<std::size_t> hits;
    std::size_t pos = 0;
    while ((pos = code.find(token, pos)) != std::string::npos) {
        const bool left_ok =
            pos == 0 ||
            (!is_ident(code[pos - 1]) &&
             (qualified_ok || code[pos - 1] != ':'));
        const std::size_t end = pos + token.size();
        const bool right_ok = end >= code.size() || !is_ident(code[end]);
        if (left_ok && right_ok) hits.push_back(pos);
        pos = end;
    }
    return hits;
}

std::size_t next_nonspace(const std::string& s, std::size_t i) {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
    return i;
}

/// Index of the last non-space char before `i`, or npos.
std::size_t prev_nonspace(const std::string& s, std::size_t i) {
    while (i > 0) {
        --i;
        if (s[i] != ' ' && s[i] != '\t') return i;
    }
    return std::string::npos;
}

// --- per-rule checks --------------------------------------------------------

void check_dense_map(const std::string& path,
                     const std::vector<scanned_line>& lines,
                     std::vector<violation>& out) {
    for (std::size_t li = 0; li < lines.size(); ++li) {
        for (const char* t : {"std::unordered_map", "std::map"}) {
            if (!find_token(lines[li].code, t).empty())
                out.push_back({path, li + 1, "dense-map",
                               std::string(t) +
                                   " in a hot dir: use util/dense_map.h "
                                   "for integer keys, or allow(dense-map) "
                                   "with a reason"});
        }
    }
}

/// Best-effort extraction of names declared as unordered containers in
/// this file: after `std::unordered_(map|set)` skip balanced <...>
/// template args, then take the next identifier.
std::set<std::string> unordered_names(const std::vector<scanned_line>& lines) {
    std::set<std::string> names;
    for (const scanned_line& l : lines) {
        for (const char* t : {"std::unordered_map", "std::unordered_set"}) {
            for (std::size_t pos : find_token(l.code, t)) {
                std::size_t i = pos + std::string(t).size();
                i = next_nonspace(l.code, i);
                if (i < l.code.size() && l.code[i] == '<') {
                    int depth = 0;
                    for (; i < l.code.size(); ++i) {
                        if (l.code[i] == '<') ++depth;
                        if (l.code[i] == '>' && --depth == 0) {
                            ++i;
                            break;
                        }
                    }
                }
                i = next_nonspace(l.code, i);
                while (i < l.code.size() &&
                       (l.code[i] == '&' || l.code[i] == '*'))
                    i = next_nonspace(l.code, i + 1);
                std::size_t b = i;
                while (i < l.code.size() && is_ident(l.code[i])) ++i;
                if (i > b) names.insert(l.code.substr(b, i - b));
            }
        }
    }
    return names;
}

void check_determinism(const std::string& path,
                       const std::vector<scanned_line>& lines,
                       std::vector<violation>& out) {
    const std::set<std::string> unordered = unordered_names(lines);
    for (std::size_t li = 0; li < lines.size(); ++li) {
        const std::string& code = lines[li].code;
        // Nondeterministic sources: wall clocks and unseeded entropy.
        for (const char* t : {"random_device", "system_clock"}) {
            if (!find_token(code, t, /*qualified_ok=*/true).empty())
                out.push_back({path, li + 1, "determinism",
                               std::string(t) +
                                   " in a deterministic kernel: results "
                                   "must not depend on time or entropy"});
        }
        for (const char* t : {"rand", "srand"}) {
            for (std::size_t pos : find_token(code, t,
                                              /*qualified_ok=*/true)) {
                const std::size_t after =
                    next_nonspace(code, pos + std::string(t).size());
                if (after >= code.size() || code[after] != '(') continue;
                const std::size_t prev = prev_nonspace(code, pos);
                if (prev != std::string::npos &&
                    (code[prev] == '.' ||
                     (code[prev] == '>' && prev > 0 &&
                      code[prev - 1] == '-')))
                    continue;  // member call on some generator object
                if (prev != std::string::npos && is_ident(code[prev])) {
                    // Previous token is a word: a declaration of a member
                    // named rand (`std::uint64_t rand()`) unless it is a
                    // statement keyword (`return rand()`).
                    static const std::set<std::string> call_context = {
                        "return", "co_return", "case",    "else",
                        "do",     "throw",     "co_yield"};
                    std::size_t b = prev;
                    while (b > 0 && is_ident(code[b - 1])) --b;
                    if (call_context.count(code.substr(b, prev - b + 1)) ==
                        0)
                        continue;
                }
                out.push_back({path, li + 1, "determinism",
                               std::string(t) +
                                   "() in a deterministic kernel: use a "
                                   "seeded generator"});
            }
        }
        // Unordered iteration: hash order would leak into results.
        for (const std::string& name : unordered) {
            for (const char* m : {".begin(", ".cbegin(", ".rbegin("}) {
                std::size_t pos = 0;
                const std::string probe = name + m;
                while ((pos = code.find(probe, pos)) != std::string::npos) {
                    if (pos == 0 || !is_ident(code[pos - 1]))
                        out.push_back(
                            {path, li + 1, "determinism",
                             "iteration over unordered container '" + name +
                                 "' in a deterministic kernel"});
                    pos += probe.size();
                }
            }
            // Range-for: `for (... : name)`.
            for (std::size_t pos : find_token(code, name)) {
                const std::size_t prev = prev_nonspace(code, pos);
                if (prev == std::string::npos || code[prev] != ':') continue;
                if (prev > 0 && code[prev - 1] == ':') continue;  // ::name
                const std::size_t after =
                    next_nonspace(code, pos + name.size());
                if (after < code.size() && code[after] == ')')
                    out.push_back(
                        {path, li + 1, "determinism",
                         "iteration over unordered container '" + name +
                             "' in a deterministic kernel"});
            }
        }
    }
}

void check_blocking_io(const std::string& path,
                       const std::vector<scanned_line>& lines,
                       std::vector<violation>& out) {
    // Tokens after which an identifier + '(' is a *call*, not a
    // declaration (`void send(...)` declares; `return send(...)` calls).
    static const std::set<std::string> call_context = {
        "return", "co_return", "case", "else", "do", "throw", "co_yield"};
    for (std::size_t li = 0; li < lines.size(); ++li) {
        const std::string& code = lines[li].code;
        for (const char* t : {"send", "recv", "connect"}) {
            for (std::size_t pos : find_token(code, t,
                                              /*qualified_ok=*/true)) {
                const std::size_t after =
                    next_nonspace(code, pos + std::string(t).size());
                if (after >= code.size() || code[after] != '(') continue;
                const std::size_t prev = prev_nonspace(code, pos);
                if (prev == std::string::npos) continue;  // line start: decl
                const char p = code[prev];
                if (p == '.' || (p == '>' && prev > 0 &&
                                 code[prev - 1] == '-'))
                    continue;  // member call on a wrapper object
                if (p == ':' && prev > 0 && code[prev - 1] == ':') {
                    // Qualified: `client::send(` (qualifier adjacent to
                    // the ::) defines/calls a member; `::send(` — bare or
                    // after a space — is the libc symbol.
                    if (prev >= 2 && is_ident(code[prev - 2])) continue;
                } else if (is_ident(p)) {
                    // Previous token is a word: declaration (`void send(`)
                    // unless it is a statement keyword (`return send(`).
                    std::size_t b = prev;
                    while (b > 0 && is_ident(code[b - 1])) --b;
                    if (call_context.count(code.substr(b, prev - b + 1)) ==
                        0)
                        continue;
                }
                out.push_back({path, li + 1, "blocking-io",
                               std::string("blocking ") + t +
                                   "() call outside svc/socket.cpp: go "
                                   "through the stream/listener wrappers"});
            }
        }
    }
}

void check_raw_mutex(const std::string& path,
                     const std::vector<scanned_line>& lines,
                     std::vector<violation>& out) {
    static const char* kTypes[] = {
        "std::mutex",          "std::shared_mutex",
        "std::recursive_mutex", "std::timed_mutex",
        "std::recursive_timed_mutex",
        "std::condition_variable", "std::condition_variable_any",
        "std::scoped_lock",    "std::lock_guard",
        "std::unique_lock",    "std::shared_lock"};
    static const char* kHeaders[] = {"<mutex>", "<shared_mutex>",
                                     "<condition_variable>"};
    for (std::size_t li = 0; li < lines.size(); ++li) {
        const std::string& code = lines[li].code;
        for (const char* t : kTypes) {
            if (!find_token(code, t).empty())
                out.push_back({path, li + 1, "raw-mutex",
                               std::string(t) +
                                   " outside util/sync.h: use the "
                                   "annotated wrpt:: wrappers"});
        }
        const std::size_t hash = next_nonspace(code, 0);
        if (hash < code.size() && code[hash] == '#' &&
            code.find("include", hash) != std::string::npos) {
            for (const char* h : kHeaders) {
                if (code.find(h) != std::string::npos)
                    out.push_back({path, li + 1, "raw-mutex",
                                   std::string("#include ") + h +
                                       " outside util/sync.h: include "
                                       "util/sync.h instead"});
            }
        }
    }
}

// --- driver -----------------------------------------------------------------

bool lintable(const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

struct lint_result {
    std::vector<violation> violations;
    std::size_t files_scanned = 0;
    std::size_t suppressed = 0;
};

bool lint_file(const std::string& path, lint_result& res) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return false;
    std::stringstream buf;
    buf << in.rdbuf();
    const std::vector<scanned_line> lines = scan_source(buf.str());
    const std::vector<std::set<std::string>> allows = collect_allows(lines);
    const std::vector<std::string> comps = path_components(path);

    std::vector<violation> found;
    if ((has_component(comps, "svc") || has_component(comps, "exec") ||
         has_component(comps, "core")))
        check_dense_map(path, lines, found);
    if (has_component(comps, "opt") || has_component(comps, "prob") ||
        has_component(comps, "sim") ||
        ends_with(comps, "exec", "parallel_sort.h"))
        check_determinism(path, lines, found);
    if (!ends_with(comps, "svc", "socket.cpp"))
        check_blocking_io(path, lines, found);
    if (!ends_with(comps, "util", "sync.h"))
        check_raw_mutex(path, lines, found);

    for (violation& v : found) {
        const std::size_t li = v.line - 1;
        bool allowed = allows[li].count(v.rule) != 0;
        if (!allowed && li > 0 && line_is_comment_only(lines[li - 1]))
            allowed = allows[li - 1].count(v.rule) != 0;
        if (allowed)
            ++res.suppressed;
        else
            res.violations.push_back(std::move(v));
    }
    ++res.files_scanned;
    return true;
}

int usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s [--list-rules] [--stats] <path>...\n"
                 "paths are files or directories (recursed over "
                 ".h/.hpp/.cpp/.cc)\n"
                 "exit: 0 clean, 1 violations, 2 usage/IO error\n",
                 argv0);
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    bool stats = false;
    bool list_rules = false;
    std::vector<std::string> roots;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--stats") {
            stats = true;
        } else if (arg == "--list-rules") {
            list_rules = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "wrpt_lint: unknown option '%s'\n",
                         arg.c_str());
            return usage(argv[0]);
        } else {
            roots.push_back(arg);
        }
    }
    if (list_rules) {
        for (const rule_info& r : kRules)
            std::printf("%-12s %s\n", r.name, r.summary);
        if (roots.empty()) return 0;
    }
    if (roots.empty()) return usage(argv[0]);

    // Expand directories, sort for deterministic diagnostics order.
    std::vector<std::string> files;
    for (const std::string& root : roots) {
        std::error_code ec;
        const fs::file_status st = fs::status(root, ec);
        if (ec || !fs::exists(st)) {
            std::fprintf(stderr, "wrpt_lint: cannot open '%s'\n",
                         root.c_str());
            return 2;
        }
        if (fs::is_directory(st)) {
            for (auto it = fs::recursive_directory_iterator(root, ec);
                 !ec && it != fs::recursive_directory_iterator(); ++it) {
                if (!it->is_regular_file() || !lintable(it->path()))
                    continue;
                const std::string p = it->path().generic_string();
                const std::vector<std::string> comps = path_components(p);
                if (has_component(comps, "fixtures") &&
                    has_component(comps, "lint"))
                    continue;  // the deliberately-dirty violation corpus
                files.push_back(p);
            }
        } else {
            files.push_back(fs::path(root).generic_string());
        }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());

    lint_result res;
    for (const std::string& f : files) {
        if (!lint_file(f, res)) {
            std::fprintf(stderr, "wrpt_lint: cannot read '%s'\n", f.c_str());
            return 2;
        }
    }
    std::stable_sort(res.violations.begin(), res.violations.end(),
                     [](const violation& a, const violation& b) {
                         if (a.path != b.path) return a.path < b.path;
                         return a.line < b.line;
                     });
    for (const violation& v : res.violations)
        std::printf("%s:%zu: [%s] %s\n", v.path.c_str(), v.line,
                    v.rule.c_str(), v.message.c_str());
    if (stats) {
        // Markdown-friendly: CI appends this to the job summary.
        std::printf("### wrpt_lint\n");
        std::printf("| metric | value |\n| --- | --- |\n");
        std::printf("| rules | %zu |\n", kRuleCount);
        std::printf("| files scanned | %zu |\n", res.files_scanned);
        std::printf("| violations | %zu |\n", res.violations.size());
        std::printf("| suppressions | %zu |\n", res.suppressed);
        std::printf("| status | %s |\n",
                    res.violations.empty() ? "clean" : "FAIL");
    }
    return res.violations.empty() ? 0 : 1;
}
